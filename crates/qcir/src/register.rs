//! Qubit and classical-bit handles and named registers.

use std::fmt;

/// A handle to one qubit of a [`Circuit`](crate::Circuit), identified by its
/// global wire index.
///
/// # Examples
///
/// ```
/// use qcir::Qubit;
/// let q = Qubit::new(2);
/// assert_eq!(q.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qubit(usize);

impl Qubit {
    /// Creates a handle for the qubit at global wire `index`.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The global wire index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for Qubit {
    fn from(index: usize) -> Self {
        Self::new(index)
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A handle to one classical bit of a [`Circuit`](crate::Circuit).
///
/// Classical bits receive measurement outcomes and drive classically
/// controlled operations — the defining primitive of dynamic quantum
/// circuits.
///
/// # Examples
///
/// ```
/// use qcir::Clbit;
/// assert_eq!(Clbit::new(0).index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clbit(usize);

impl Clbit {
    /// Creates a handle for the classical bit at global index `index`.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The global classical-bit index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for Clbit {
    fn from(index: usize) -> Self {
        Self::new(index)
    }
}

impl fmt::Display for Clbit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A named, contiguous group of qubits within a circuit.
///
/// Registers carry no behaviour of their own; they name slices of the global
/// wire space for readability, QASM export and the data/ancilla/answer role
/// bookkeeping of the DQC transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantumRegister {
    name: String,
    start: usize,
    size: usize,
}

impl QuantumRegister {
    pub(crate) fn new(name: impl Into<String>, start: usize, size: usize) -> Self {
        Self {
            name: name.into(),
            start,
            size,
        }
    }

    /// The register's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits in the register.
    #[must_use]
    pub fn len(&self) -> usize {
        self.size
    }

    /// `true` when the register holds no qubits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The qubit at `offset` within the register.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= self.len()`.
    #[must_use]
    pub fn qubit(&self, offset: usize) -> Qubit {
        assert!(
            offset < self.size,
            "qubit offset {offset} out of range for register '{}' of size {}",
            self.name,
            self.size
        );
        Qubit::new(self.start + offset)
    }

    /// Iterates over the register's qubits in wire order.
    pub fn iter(&self) -> impl Iterator<Item = Qubit> + '_ {
        (self.start..self.start + self.size).map(Qubit::new)
    }

    /// Global index of the register's first wire.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// `true` when `qubit` belongs to this register.
    #[must_use]
    pub fn contains(&self, qubit: Qubit) -> bool {
        (self.start..self.start + self.size).contains(&qubit.index())
    }
}

/// A named, contiguous group of classical bits within a circuit.
///
/// The DQC transformation writes each data-qubit measurement into one bit of
/// a classical register and later conditions gates on those bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalRegister {
    name: String,
    start: usize,
    size: usize,
}

impl ClassicalRegister {
    pub(crate) fn new(name: impl Into<String>, start: usize, size: usize) -> Self {
        Self {
            name: name.into(),
            start,
            size,
        }
    }

    /// The register's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of bits in the register.
    #[must_use]
    pub fn len(&self) -> usize {
        self.size
    }

    /// `true` when the register holds no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The classical bit at `offset` within the register.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= self.len()`.
    #[must_use]
    pub fn bit(&self, offset: usize) -> Clbit {
        assert!(
            offset < self.size,
            "bit offset {offset} out of range for register '{}' of size {}",
            self.name,
            self.size
        );
        Clbit::new(self.start + offset)
    }

    /// Iterates over the register's bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = Clbit> + '_ {
        (self.start..self.start + self.size).map(Clbit::new)
    }

    /// Global index of the register's first bit.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// `true` when `bit` belongs to this register.
    #[must_use]
    pub fn contains(&self, bit: Clbit) -> bool {
        (self.start..self.start + self.size).contains(&bit.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_handles_are_ordered_by_index() {
        assert!(Qubit::new(0) < Qubit::new(1));
        assert_eq!(Qubit::from(3).index(), 3);
        assert_eq!(Qubit::new(5).to_string(), "q5");
    }

    #[test]
    fn clbit_handles_display() {
        assert_eq!(Clbit::new(2).to_string(), "c2");
        assert_eq!(Clbit::from(7).index(), 7);
    }

    #[test]
    fn quantum_register_addresses_its_slice() {
        let r = QuantumRegister::new("d", 2, 3);
        assert_eq!(r.name(), "d");
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.qubit(0), Qubit::new(2));
        assert_eq!(r.qubit(2), Qubit::new(4));
        assert!(r.contains(Qubit::new(3)));
        assert!(!r.contains(Qubit::new(5)));
        let all: Vec<_> = r.iter().collect();
        assert_eq!(all, vec![Qubit::new(2), Qubit::new(3), Qubit::new(4)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantum_register_rejects_bad_offset() {
        let _ = QuantumRegister::new("d", 0, 2).qubit(2);
    }

    #[test]
    fn classical_register_addresses_its_slice() {
        let r = ClassicalRegister::new("meas", 1, 2);
        assert_eq!(r.bit(1), Clbit::new(2));
        assert!(r.contains(Clbit::new(1)));
        assert!(!r.contains(Clbit::new(0)));
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn classical_register_rejects_bad_offset() {
        let _ = ClassicalRegister::new("c", 0, 1).bit(1);
    }
}
