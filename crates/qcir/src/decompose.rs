//! Gate decompositions: Toffoli and multi-control Toffoli lowering.
//!
//! Three Toffoli realizations are provided, matching the paper:
//!
//! * [`ccx_clifford_t`] — the standard 15-gate Clifford+T network (Fig. 2),
//!   used for the *traditional* benchmark circuits;
//! * [`ccx_cv`] — the 5-gate CV/CV†/CX network of Barenco et al. (Eqn 1),
//!   the basis of the **dynamic-1** scheme;
//! * [`ccx_cv_ancilla`] — the ancilla-unrolled CV network (Eqn 3), the basis
//!   of the **dynamic-2** scheme: `CCX = CV(c0,t)·CV(c1,t)·CV†(a,t)` with
//!   `a = c0 xor c1` computed (and uncomputed) on a clean ancilla.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::instruction::Instruction;
use crate::register::Qubit;

/// How to lower a Toffoli ([`Gate::Ccx`]) to two-qubit primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToffoliStyle {
    /// 15-gate H/T/T†/CX network (the paper's Fig. 2).
    CliffordT,
    /// 5-gate CV/CV†/CX network (the paper's Eqn 1); yields **dynamic-1**.
    CvChain,
    /// CV network unrolled over a clean shared ancilla (the paper's Eqn 3);
    /// yields **dynamic-2** and enables the Lemma 1 iteration sharing.
    CvAncilla,
}

/// The 15-gate Clifford+T Toffoli on qubits `[c0, c1, t] = [0, 1, 2]`.
///
/// # Examples
///
/// ```
/// use qcir::decompose::ccx_clifford_t;
/// assert_eq!(ccx_clifford_t().len(), 15);
/// ```
#[must_use]
pub fn ccx_clifford_t() -> Circuit {
    let (c0, c1, t) = (Qubit::new(0), Qubit::new(1), Qubit::new(2));
    let mut c = Circuit::with_name("ccx_clifford_t", 3, 0);
    c.h(t)
        .cx(c1, t)
        .tdg(t)
        .cx(c0, t)
        .t(t)
        .cx(c1, t)
        .tdg(t)
        .cx(c0, t)
        .t(c1)
        .t(t)
        .h(t)
        .cx(c0, c1)
        .t(c0)
        .tdg(c1)
        .cx(c0, c1);
    c
}

/// The 5-gate CV-network Toffoli on qubits `[c0, c1, t] = [0, 1, 2]`:
/// `CV(c1,t) · CX(c0,c1) · CV†(c1,t) · CX(c0,c1) · CV(c0,t)`.
///
/// The target receives `V^{c1} · V†^{c0 xor c1} · V^{c0} = V^{2·c0·c1} =
/// X^{c0·c1}`.
#[must_use]
pub fn ccx_cv() -> Circuit {
    let (c0, c1, t) = (Qubit::new(0), Qubit::new(1), Qubit::new(2));
    let mut c = Circuit::with_name("ccx_cv", 3, 0);
    c.cv(c1, t).cx(c0, c1).cvdg(c1, t).cx(c0, c1).cv(c0, t);
    c
}

/// The ancilla-unrolled CV Toffoli on qubits `[c0, c1, t, a] = [0, 1, 2, 3]`
/// with `a` a clean (`|0>`) ancilla that is returned clean:
/// `CV(c0,t) · CX(c0,a) · CV(c1,t) · CX(c1,a) · CV†(a,t) · CX(c1,a) · CX(c0,a)`.
///
/// The target receives `V^{c0+c1-(c0 xor c1)} = X^{c0·c1}`; no gate couples
/// the two control qubits directly, which is what buys the dynamic-2 scheme
/// its accuracy.
#[must_use]
pub fn ccx_cv_ancilla() -> Circuit {
    let (c0, c1, t, a) = (Qubit::new(0), Qubit::new(1), Qubit::new(2), Qubit::new(3));
    let mut c = Circuit::with_name("ccx_cv_ancilla", 4, 0);
    c.cv(c0, t)
        .cx(c0, a)
        .cv(c1, t)
        .cx(c1, a)
        .cvdg(a, t)
        .cx(c1, a)
        .cx(c0, a);
    c
}

/// The Clifford+T realization of CV or CV† on `[control, target] = [0, 1]`
/// (the paper's Fig. 6), via `V = H·S·H` and `CS = T ctrl, T tgt,
/// CX, T† tgt, CX`.
#[must_use]
pub fn cv_clifford_t(dagger: bool) -> Circuit {
    let (c0, t) = (Qubit::new(0), Qubit::new(1));
    let mut c = Circuit::with_name(
        if dagger {
            "cvdg_clifford_t"
        } else {
            "cv_clifford_t"
        },
        2,
        0,
    );
    c.h(t);
    if dagger {
        c.tdg(c0).tdg(t).cx(c0, t).t(t).cx(c0, t);
    } else {
        c.t(c0).t(t).cx(c0, t).tdg(t).cx(c0, t);
    }
    c.h(t);
    c
}

/// A multi-control Toffoli ladder: `MCX_n` on `n` controls lowered to
/// `2(n-2)+1` Toffolis using `n-2` clean ancillas (returned clean).
///
/// Qubit layout of the returned circuit: controls `0..n`, target `n`,
/// ancillas `n+1..2n-1`.
///
/// # Panics
///
/// Panics if `n_controls < 3` (smaller cases are already primitive gates).
#[must_use]
pub fn mcx_ladder(n_controls: usize) -> Circuit {
    assert!(n_controls >= 3, "mcx_ladder needs at least 3 controls");
    let n = n_controls;
    let target = Qubit::new(n);
    let anc = |i: usize| Qubit::new(n + 1 + i);
    let ctrl = Qubit::new;
    let mut c = Circuit::with_name("mcx_ladder", 2 * n - 1, 0);
    // Compute chain: a0 = c0 & c1, a_i = a_{i-1} & c_{i+1}.
    c.ccx(ctrl(0), ctrl(1), anc(0));
    for i in 1..n - 2 {
        c.ccx(anc(i - 1), ctrl(i + 1), anc(i));
    }
    c.ccx(anc(n - 3), ctrl(n - 1), target);
    // Uncompute in reverse.
    for i in (1..n - 2).rev() {
        c.ccx(anc(i - 1), ctrl(i + 1), anc(i));
    }
    c.ccx(ctrl(0), ctrl(1), anc(0));
    c
}

/// Rewrites every Toffoli in `circuit` according to `style`, leaving all
/// other instructions untouched.
///
/// For [`ToffoliStyle::CvAncilla`] one clean ancilla wire is appended **per
/// distinct Toffoli target** (in order of first appearance) and shared by
/// every Toffoli with that target — each one uncomputes it back to `|0>`.
/// Sharing the ancilla among same-target Toffolis is what lets the dynamic
/// transformation realize them all with a single extra iteration (the
/// paper's Lemma 1); Toffolis with *different* targets need separate
/// ancillas or their control/target dependencies become cyclic.
#[must_use]
pub fn decompose_ccx(circuit: &Circuit, style: ToffoliStyle) -> Circuit {
    // Ancilla wire per distinct Toffoli target, in first-appearance order.
    let mut targets: Vec<Qubit> = Vec::new();
    if style == ToffoliStyle::CvAncilla {
        for inst in circuit.iter() {
            if matches!(inst.as_gate(), Some(Gate::Ccx)) && !inst.is_conditioned() {
                let t = inst.qubits()[2];
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
        }
    }
    let base = circuit.num_qubits();
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        base + targets.len(),
        circuit.num_clbits(),
    );
    let ancilla_of = |t: Qubit| -> Qubit {
        let idx = targets.iter().position(|&x| x == t).expect("target known");
        Qubit::new(base + idx)
    };
    for inst in circuit.iter() {
        match inst.as_gate() {
            Some(Gate::Ccx) if !inst.is_conditioned() => {
                let q = inst.qubits();
                let (template, qmap): (Circuit, Vec<Qubit>) = match style {
                    ToffoliStyle::CliffordT => (ccx_clifford_t(), q.to_vec()),
                    ToffoliStyle::CvChain => (ccx_cv(), q.to_vec()),
                    ToffoliStyle::CvAncilla => {
                        let mut m = q.to_vec();
                        m.push(ancilla_of(q[2]));
                        (ccx_cv_ancilla(), m)
                    }
                };
                out.compose(&template, &qmap, &[]);
            }
            _ => {
                out.push(inst.clone());
            }
        }
    }
    out
}

/// The ancilla wires [`decompose_ccx`] would append for
/// [`ToffoliStyle::CvAncilla`]: one per distinct Toffoli target, placed
/// after the circuit's existing wires in first-appearance order.
#[must_use]
pub fn cv_ancilla_wires(circuit: &Circuit) -> Vec<Qubit> {
    let mut targets: Vec<Qubit> = Vec::new();
    for inst in circuit.iter() {
        if matches!(inst.as_gate(), Some(Gate::Ccx)) && !inst.is_conditioned() {
            let t = inst.qubits()[2];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
    }
    (0..targets.len())
        .map(|i| Qubit::new(circuit.num_qubits() + i))
        .collect()
}

/// Rewrites every CV/CV† in `circuit` into Clifford+T (the paper's Fig. 6).
#[must_use]
pub fn decompose_cv(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        circuit.num_qubits(),
        circuit.num_clbits(),
    );
    for inst in circuit.iter() {
        match inst.as_gate() {
            Some(g @ (Gate::Cv | Gate::Cvdg)) if !inst.is_conditioned() => {
                let template = cv_clifford_t(matches!(g, Gate::Cvdg));
                out.compose(&template, inst.qubits(), &[]);
            }
            _ => {
                out.push(inst.clone());
            }
        }
    }
    out
}

/// Rewrites every `MCX_n` with `n >= 3` into Toffolis via [`mcx_ladder`],
/// appending the required ancilla wires (shared across all MCX instances,
/// sized for the widest one).
#[must_use]
pub fn decompose_mcx(circuit: &Circuit) -> Circuit {
    let widest = circuit
        .iter()
        .filter_map(|i| match i.as_gate() {
            Some(Gate::Mcx(n)) if *n >= 3 => Some(*n),
            _ => None,
        })
        .max();
    let extra = widest.map_or(0, |n| n - 2);
    let base = circuit.num_qubits();
    let mut out = Circuit::with_name(
        circuit.name().to_string(),
        base + extra,
        circuit.num_clbits(),
    );
    for inst in circuit.iter() {
        match inst.as_gate() {
            Some(Gate::Mcx(n)) if *n >= 3 && !inst.is_conditioned() => {
                let mut qmap = inst.qubits().to_vec();
                for i in 0..(n - 2) {
                    qmap.push(Qubit::new(base + i));
                }
                out.compose(&mcx_ladder(*n), &qmap, &[]);
            }
            Some(Gate::Mcx(2)) if !inst.is_conditioned() => {
                out.push(Instruction::gate(Gate::Ccx, inst.qubits().to_vec()));
            }
            Some(Gate::Mcx(1)) if !inst.is_conditioned() => {
                out.push(Instruction::gate(Gate::Cx, inst.qubits().to_vec()));
            }
            _ => {
                out.push(inst.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clifford_t_toffoli_has_fifteen_gates() {
        let c = ccx_clifford_t();
        assert_eq!(c.len(), 15);
        assert!(c.is_unitary_only());
    }

    #[test]
    fn cv_toffoli_has_five_gates() {
        assert_eq!(ccx_cv().len(), 5);
    }

    #[test]
    fn cv_ancilla_toffoli_has_seven_gates_on_four_qubits() {
        let c = ccx_cv_ancilla();
        assert_eq!(c.len(), 7);
        assert_eq!(c.num_qubits(), 4);
    }

    #[test]
    fn cv_clifford_t_is_seven_gates() {
        assert_eq!(cv_clifford_t(false).len(), 7);
        assert_eq!(cv_clifford_t(true).len(), 7);
    }

    #[test]
    fn decompose_ccx_replaces_only_toffolis() {
        let mut c = Circuit::new(3, 0);
        c.h(Qubit::new(0))
            .ccx(Qubit::new(0), Qubit::new(1), Qubit::new(2));
        let lowered = decompose_ccx(&c, ToffoliStyle::CliffordT);
        assert_eq!(lowered.len(), 16);
        assert_eq!(lowered.num_qubits(), 3);
        assert!(lowered.iter().all(|i| i.as_gate() != Some(&Gate::Ccx)));
    }

    #[test]
    fn decompose_ccx_ancilla_adds_one_shared_wire() {
        let mut c = Circuit::new(4, 0);
        c.ccx(Qubit::new(0), Qubit::new(1), Qubit::new(3)).ccx(
            Qubit::new(1),
            Qubit::new(2),
            Qubit::new(3),
        );
        let lowered = decompose_ccx(&c, ToffoliStyle::CvAncilla);
        assert_eq!(lowered.num_qubits(), 5);
        assert_eq!(lowered.len(), 14);
    }

    #[test]
    fn decompose_ccx_without_toffolis_is_identity() {
        let mut c = Circuit::new(2, 0);
        c.h(Qubit::new(0)).cx(Qubit::new(0), Qubit::new(1));
        let lowered = decompose_ccx(&c, ToffoliStyle::CvAncilla);
        assert_eq!(lowered.num_qubits(), 2);
        assert_eq!(lowered.len(), 2);
    }

    #[test]
    fn mcx_ladder_counts() {
        let c = mcx_ladder(3);
        assert_eq!(c.num_qubits(), 5);
        assert_eq!(c.len(), 3);
        let c4 = mcx_ladder(4);
        assert_eq!(c4.num_qubits(), 7);
        assert_eq!(c4.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least 3 controls")]
    fn mcx_ladder_rejects_small_cases() {
        let _ = mcx_ladder(2);
    }

    #[test]
    fn decompose_mcx_lowers_to_ccx() {
        let mut c = Circuit::new(5, 0);
        c.mcx(
            &[Qubit::new(0), Qubit::new(1), Qubit::new(2), Qubit::new(3)],
            Qubit::new(4),
        );
        let lowered = decompose_mcx(&c);
        assert_eq!(lowered.num_qubits(), 7);
        assert!(lowered
            .iter()
            .all(|i| matches!(i.as_gate(), Some(Gate::Ccx))));
        assert_eq!(lowered.len(), 5);
    }

    #[test]
    fn decompose_mcx_normalizes_narrow_mcx() {
        let mut c = Circuit::new(3, 0);
        c.mcx(&[Qubit::new(0)], Qubit::new(1));
        c.mcx(&[Qubit::new(0), Qubit::new(1)], Qubit::new(2));
        let lowered = decompose_mcx(&c);
        assert_eq!(lowered.instructions()[0].as_gate(), Some(&Gate::Cx));
        assert_eq!(lowered.instructions()[1].as_gate(), Some(&Gate::Ccx));
        assert_eq!(lowered.num_qubits(), 3);
    }
}
