//! # qcir — quantum circuit IR with dynamic-circuit support
//!
//! A quantum circuit intermediate representation sized for research on
//! **dynamic quantum circuits** (DQC): besides the usual unitary gate set it
//! models mid-circuit measurement, active reset and classically controlled
//! operations as first-class instructions, and provides the analyses a
//! circuit transformer needs — dependency DAGs, exact commutation checking,
//! depth/gate-count metrics, Toffoli decompositions and peephole cleanup —
//! plus OpenQASM 3 round-tripping and text diagrams.
//!
//! This crate is the circuit substrate for the reproduction of Kole et al.,
//! *"Extending the Design Space of Dynamic Quantum Circuits for Toffoli
//! based Network"* (DATE 2023); the transformation itself lives in the `dqc`
//! crate.
//!
//! # Examples
//!
//! Build a small dynamic circuit — measure, reset, then classically control:
//!
//! ```
//! use qcir::{Circuit, Qubit, Clbit, CircuitStats};
//!
//! let mut c = Circuit::new(2, 1);
//! let (d, a) = (Qubit::new(0), Qubit::new(1));
//! c.h(d).cx(d, a).measure(d, Clbit::new(0));
//! c.reset(d);
//! c.x_if(d, Clbit::new(0));
//! assert!(c.is_dynamic());
//! assert_eq!(CircuitStats::of(&c).reset_count, 1);
//! ```

pub mod ascii;
pub mod basis;
mod circuit;
pub mod commute;
mod dag;
pub mod decompose;
mod error;
pub mod fusion;
mod gate;
mod instruction;
mod metrics;
pub mod passes;
pub mod qasm;
mod register;
pub mod reuse;
pub mod routing;

pub use circuit::Circuit;
pub use dag::DagCircuit;
pub use error::CircuitError;
pub use fusion::{fuse, FusedBlock, FusedOp, FusedProgram, FusionStats};
pub use gate::Gate;
pub use instruction::{Condition, Instruction, OpKind};
pub use metrics::{depth, gate_count, CircuitStats};
pub use register::{ClassicalRegister, Clbit, QuantumRegister, Qubit};
