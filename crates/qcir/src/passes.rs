//! Peephole circuit optimization passes.
//!
//! Two small passes keep the emitted dynamic circuits tidy and make the
//! resource accounting match the paper's claims (e.g. "2 more classically
//! controlled X operations per Toffoli" for dynamic-2):
//!
//! * [`cancel_adjacent_inverses`] removes gate pairs `G, G†` on identical
//!   operands with no intervening use of any of their wires — these arise
//!   when consecutive Toffolis uncompute and recompute a shared ancilla.
//! * [`remove_dead_writes`] removes single-qubit gates whose effect is
//!   destroyed by a following reset (or falls off the end of the circuit
//!   unmeasured) — these arise when a discarded iteration qubit receives
//!   uncomputation it no longer needs.

use crate::circuit::Circuit;
use crate::instruction::{Instruction, OpKind};

/// Removes adjacent inverse gate pairs until a fixed point.
///
/// Two instructions cancel when they are both (possibly identically
/// conditioned) gates on exactly the same operands, the second is the
/// inverse of the first, and no instruction between them touches any wire of
/// the pair. Barriers block cancellation.
///
/// # Examples
///
/// ```
/// use qcir::{passes::cancel_adjacent_inverses, Circuit, Qubit};
/// let mut c = Circuit::new(1, 0);
/// c.h(Qubit::new(0)).h(Qubit::new(0)).x(Qubit::new(0));
/// assert_eq!(cancel_adjacent_inverses(&c).len(), 1);
/// ```
#[must_use]
pub fn cancel_adjacent_inverses(circuit: &Circuit) -> Circuit {
    let mut insts: Vec<Instruction> = circuit.instructions().to_vec();
    loop {
        let mut cancel: Option<(usize, usize)> = None;
        'scan: for i in 0..insts.len() {
            let a = &insts[i];
            let OpKind::Gate(ga) = a.kind() else {
                continue;
            };
            let ga = ga.clone();
            for (offset, b) in insts[i + 1..].iter().enumerate() {
                let j = i + 1 + offset;
                let shares_wire = a.qubits().iter().any(|q| b.qubits().contains(q))
                    || a.clbits_read()
                        .iter()
                        .any(|c| b.clbits_written().contains(c) || b.clbits_read().contains(c));
                if !shares_wire {
                    continue;
                }
                // `b` is the first instruction touching a wire of `a`.
                if let OpKind::Gate(gb) = b.kind() {
                    if b.qubits() == a.qubits()
                        && b.condition() == a.condition()
                        && *gb == ga.inverse()
                    {
                        cancel = Some((i, j));
                        break 'scan;
                    }
                }
                break; // wire blocked by a non-cancelling instruction
            }
        }
        match cancel {
            Some((i, j)) => {
                insts.remove(j);
                insts.remove(i);
            }
            None => break,
        }
    }
    rebuild(circuit, insts)
}

/// Removes single-qubit gates whose effect is destroyed by a following
/// reset before any measurement.
///
/// Wires are treated as **live at the end of the circuit** (the state might
/// be consumed by later composition), so only writes killed by a reset are
/// removed. See [`remove_dead_writes_assuming_discarded`] to additionally
/// mark wires whose final state is known to be thrown away.
#[must_use]
pub fn remove_dead_writes(circuit: &Circuit) -> Circuit {
    remove_dead_writes_assuming_discarded(circuit, &[])
}

/// Like [`remove_dead_writes`], but wires in `discarded` are treated as dead
/// at the end of the circuit: trailing single-qubit gates on them (e.g.
/// uncomputation of a dynamic circuit's recycled data qubit after its last
/// measurement) are removed too.
///
/// Scanning backwards, a wire is *dead* past a point when its next operation
/// is a reset, or (for discarded wires) when no further operation touches
/// it. A single-qubit gate — conditioned or not — on a dead wire cannot
/// influence any measurement outcome (a local unitary never changes the
/// reduced state of the other wires) and is removed. Multi-qubit gates,
/// measurements, resets and barriers are always kept.
#[must_use]
pub fn remove_dead_writes_assuming_discarded(
    circuit: &Circuit,
    discarded: &[crate::register::Qubit],
) -> Circuit {
    #[derive(Clone, Copy, PartialEq)]
    enum Status {
        Dead,
        Live,
    }
    let mut status = vec![Status::Live; circuit.num_qubits()];
    for q in discarded {
        status[q.index()] = Status::Dead;
    }
    let mut keep = vec![true; circuit.len()];
    for (idx, inst) in circuit.instructions().iter().enumerate().rev() {
        match inst.kind() {
            OpKind::Barrier => {}
            OpKind::Measure => {
                status[inst.qubits()[0].index()] = Status::Live;
            }
            OpKind::Reset => {
                status[inst.qubits()[0].index()] = Status::Dead;
            }
            OpKind::Gate(g) => {
                if g.num_qubits() == 1 && status[inst.qubits()[0].index()] == Status::Dead {
                    keep[idx] = false;
                } else {
                    for q in inst.qubits() {
                        status[q.index()] = Status::Live;
                    }
                }
            }
        }
    }
    let insts = circuit
        .instructions()
        .iter()
        .enumerate()
        .filter(|&(i, _)| keep[i])
        .map(|(_, inst)| inst.clone())
        .collect();
    rebuild(circuit, insts)
}

/// Merges runs of classically controlled X gates on a common qubit.
///
/// Within a maximal run of consecutive instructions that are all X gates on
/// the *same* qubit conditioned on single classical bits (or unconditioned),
/// the gates mutually commute and are self-inverse, so the run reduces to
/// one X per condition occurring an odd number of times (in first-occurrence
/// order). This is what collapses the uncompute/recompute chatter between
/// consecutive shared-ancilla Toffolis down to the paper's "2 classically
/// controlled X per Toffoli".
#[must_use]
pub fn merge_conditioned_x_runs(circuit: &Circuit) -> Circuit {
    use crate::gate::Gate;

    let is_run_member = |inst: &Instruction| -> bool {
        matches!(inst.kind(), OpKind::Gate(Gate::X))
            && inst.qubits().len() == 1
            && match inst.condition() {
                None => true,
                Some(crate::instruction::Condition::Bit { .. }) => true,
                Some(_) => false,
            }
    };

    let mut out_insts: Vec<Instruction> = Vec::new();
    let insts = circuit.instructions();
    let mut i = 0;
    while i < insts.len() {
        if !is_run_member(&insts[i]) {
            out_insts.push(insts[i].clone());
            i += 1;
            continue;
        }
        let qubit = insts[i].qubits()[0];
        let mut j = i;
        while j < insts.len() && is_run_member(&insts[j]) && insts[j].qubits()[0] == qubit {
            j += 1;
        }
        // Parity per condition key, preserving first-occurrence order.
        let mut keys: Vec<(Option<crate::instruction::Condition>, usize)> = Vec::new();
        for inst in &insts[i..j] {
            let cond = inst.condition().cloned();
            match keys.iter_mut().find(|(k, _)| *k == cond) {
                Some((_, parity)) => *parity ^= 1,
                None => keys.push((cond, 1)),
            }
        }
        for (cond, parity) in keys {
            if parity == 1 {
                let mut inst = Instruction::gate(Gate::X, vec![qubit]);
                if let Some(c) = cond {
                    inst = inst.with_condition(c);
                }
                out_insts.push(inst);
            }
        }
        i = j;
    }
    rebuild(circuit, out_insts)
}

/// Runs all peephole passes until none changes the circuit.
#[must_use]
pub fn peephole_optimize(circuit: &Circuit) -> Circuit {
    let mut current = circuit.clone();
    loop {
        let next = remove_dead_writes(&merge_conditioned_x_runs(&cancel_adjacent_inverses(
            &current,
        )));
        if next.len() == current.len() {
            return next;
        }
        current = next;
    }
}

fn rebuild(model: &Circuit, insts: Vec<Instruction>) -> Circuit {
    let mut out = Circuit::with_name(
        model.name().to_string(),
        model.num_qubits(),
        model.num_clbits(),
    );
    for inst in insts {
        out.push(inst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::register::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn hh_pair_cancels() {
        let mut circ = Circuit::new(1, 0);
        circ.h(q(0)).h(q(0));
        assert!(cancel_adjacent_inverses(&circ).is_empty());
    }

    #[test]
    fn t_tdg_pair_cancels() {
        let mut circ = Circuit::new(1, 0);
        circ.t(q(0)).tdg(q(0)).x(q(0));
        let out = cancel_adjacent_inverses(&circ);
        assert_eq!(out.len(), 1);
        assert_eq!(out.instructions()[0].as_gate(), Some(&Gate::X));
    }

    #[test]
    fn cascading_cancellation_reaches_fixed_point() {
        // H T T† H collapses completely (inner pair first, then outer).
        let mut circ = Circuit::new(1, 0);
        circ.h(q(0)).t(q(0)).tdg(q(0)).h(q(0));
        assert!(cancel_adjacent_inverses(&circ).is_empty());
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut circ = Circuit::new(1, 0);
        circ.h(q(0)).x(q(0)).h(q(0));
        assert_eq!(cancel_adjacent_inverses(&circ).len(), 3);
    }

    #[test]
    fn intervening_gate_on_other_wire_does_not_block() {
        let mut circ = Circuit::new(2, 0);
        circ.h(q(0)).x(q(1)).h(q(0));
        let out = cancel_adjacent_inverses(&circ);
        assert_eq!(out.len(), 1);
        assert_eq!(out.instructions()[0].qubits(), &[q(1)]);
    }

    #[test]
    fn cx_pairs_cancel_only_on_same_operands() {
        let mut circ = Circuit::new(3, 0);
        circ.cx(q(0), q(1))
            .cx(q(0), q(1))
            .cx(q(0), q(2))
            .cx(q(2), q(0));
        let out = cancel_adjacent_inverses(&circ);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn conditioned_x_pairs_cancel_when_conditions_match() {
        let mut circ = Circuit::new(1, 1);
        circ.x_if(q(0), c(0)).x_if(q(0), c(0));
        assert!(cancel_adjacent_inverses(&circ).is_empty());

        let mut mixed = Circuit::new(1, 2);
        mixed.x_if(q(0), c(0)).x_if(q(0), c(1));
        assert_eq!(cancel_adjacent_inverses(&mixed).len(), 2);
    }

    #[test]
    fn conditioned_and_unconditioned_x_do_not_cancel() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).x_if(q(0), c(0));
        assert_eq!(cancel_adjacent_inverses(&circ).len(), 2);
    }

    #[test]
    fn measurement_blocks_cancellation() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0)).measure(q(0), c(0)).h(q(0));
        assert_eq!(cancel_adjacent_inverses(&circ).len(), 3);
    }

    #[test]
    fn gate_before_reset_is_dead() {
        let mut circ = Circuit::new(1, 0);
        circ.x(q(0)).reset(q(0));
        let out = remove_dead_writes(&circ);
        assert_eq!(out.len(), 1);
        assert!(matches!(out.instructions()[0].kind(), OpKind::Reset));
    }

    #[test]
    fn trailing_gate_is_dead_only_on_discarded_wires() {
        let mut circ = Circuit::new(2, 1);
        circ.h(q(0)).cx(q(0), q(1)).measure(q(1), c(0)).x(q(0));
        // Default: q0 may still be consumed downstream; keep the X.
        assert_eq!(remove_dead_writes(&circ).len(), 4);
        // Explicitly discarded: the trailing X goes.
        let out = remove_dead_writes_assuming_discarded(&circ, &[q(0)]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn merge_x_runs_cancels_duplicate_conditions() {
        // X^c1 X^c0 X^c1 X^c2 -> X^c0 X^c2 (order of first occurrence).
        let mut circ = Circuit::new(1, 3);
        circ.x_if(q(0), c(1))
            .x_if(q(0), c(0))
            .x_if(q(0), c(1))
            .x_if(q(0), c(2));
        let out = merge_conditioned_x_runs(&circ);
        assert_eq!(out.len(), 2);
        // Parities: c1 twice (even, cancelled); c0 and c2 once each.
        let read: Vec<_> = out
            .instructions()
            .iter()
            .flat_map(|i| i.clbits_read())
            .collect();
        assert_eq!(read, vec![c(0), c(2)]);
    }

    #[test]
    fn merge_x_runs_handles_unconditioned_x() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).x_if(q(0), c(0)).x(q(0));
        let out = merge_conditioned_x_runs(&circ);
        // Two plain X cancel; the conditioned one survives.
        assert_eq!(out.len(), 1);
        assert!(out.instructions()[0].is_conditioned());
    }

    #[test]
    fn merge_x_runs_stops_at_other_qubits_and_gates() {
        let mut circ = Circuit::new(2, 1);
        circ.x_if(q(0), c(0)).h(q(1)).x_if(q(0), c(0));
        // The H on another wire splits the run (runs are consecutive).
        assert_eq!(merge_conditioned_x_runs(&circ).len(), 3);
    }

    #[test]
    fn merge_x_runs_ignores_register_conditions() {
        let mut circ = Circuit::new(1, 2);
        let cond = crate::instruction::Condition::register(vec![c(0), c(1)], 0b11);
        circ.gate_if(Gate::X, &[q(0)], cond.clone());
        circ.gate_if(Gate::X, &[q(0)], cond);
        // Register-conditioned gates are left untouched (conservative).
        assert_eq!(merge_conditioned_x_runs(&circ).len(), 2);
    }

    #[test]
    fn gate_before_measure_is_live() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0)).measure(q(0), c(0));
        assert_eq!(remove_dead_writes(&circ).len(), 2);
    }

    #[test]
    fn conditioned_gate_before_reset_is_dead() {
        let mut circ = Circuit::new(1, 1);
        circ.x_if(q(0), c(0)).reset(q(0));
        assert_eq!(remove_dead_writes(&circ).len(), 1);
    }

    #[test]
    fn multi_qubit_gates_are_never_dead() {
        let mut circ = Circuit::new(2, 1);
        circ.cx(q(0), q(1)).reset(q(0)).reset(q(1));
        assert_eq!(remove_dead_writes(&circ).len(), 3);
    }

    #[test]
    fn dead_chain_is_fully_removed() {
        // x; h; reset -> both gates dead.
        let mut circ = Circuit::new(1, 0);
        circ.x(q(0)).h(q(0)).reset(q(0));
        assert_eq!(remove_dead_writes(&circ).len(), 1);
    }

    #[test]
    fn peephole_combines_both_passes() {
        let mut circ = Circuit::new(2, 1);
        circ.h(q(0)).h(q(0)).x(q(1)).reset(q(1)).measure(q(0), c(0));
        let out = peephole_optimize(&circ);
        assert_eq!(out.len(), 2); // reset + measure survive
    }
}
