//! Circuit complexity metrics: gate counts and depth.
//!
//! These are the quantities reported in the paper's Tables I and II. The
//! conventions are documented on each item because the paper leaves its own
//! implicit: *gate count* counts every non-barrier instruction, including
//! measurement and reset (the paper's dynamic-circuit counts include them);
//! *depth* is the longest dependency chain where measure, reset and
//! classically conditioned gates occupy a layer like any other operation and
//! a conditioned gate depends on the measurement that produced its bit.

use crate::circuit::Circuit;
use crate::instruction::OpKind;
use std::collections::BTreeMap;
use std::fmt;

/// A summary of a circuit's complexity.
///
/// # Examples
///
/// ```
/// use qcir::{Circuit, Qubit, Clbit, CircuitStats};
///
/// let mut c = Circuit::new(2, 1);
/// c.h(Qubit::new(0)).cx(Qubit::new(0), Qubit::new(1));
/// c.measure(Qubit::new(1), Clbit::new(0));
/// let stats = CircuitStats::of(&c);
/// assert_eq!(stats.gate_count, 3);
/// assert_eq!(stats.depth, 3);
/// assert_eq!(stats.unitary_count, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of qubit wires.
    pub num_qubits: usize,
    /// Number of classical bits.
    pub num_clbits: usize,
    /// Every non-barrier instruction, including measure and reset.
    pub gate_count: usize,
    /// Unconditioned unitary gates only.
    pub unitary_count: usize,
    /// Measurement operations.
    pub measure_count: usize,
    /// Active reset operations.
    pub reset_count: usize,
    /// Classically conditioned gate operations.
    pub conditioned_count: usize,
    /// Gates acting on two or more qubits.
    pub multi_qubit_count: usize,
    /// Circuit depth (see module docs for the convention).
    pub depth: usize,
    /// Instruction tally by mnemonic.
    pub by_name: BTreeMap<String, usize>,
}

impl CircuitStats {
    /// Computes the statistics of `circuit`.
    #[must_use]
    pub fn of(circuit: &Circuit) -> Self {
        let mut stats = Self {
            num_qubits: circuit.num_qubits(),
            num_clbits: circuit.num_clbits(),
            gate_count: 0,
            unitary_count: 0,
            measure_count: 0,
            reset_count: 0,
            conditioned_count: 0,
            multi_qubit_count: 0,
            depth: depth(circuit),
            by_name: BTreeMap::new(),
        };
        for inst in circuit.iter() {
            if inst.is_barrier() {
                continue;
            }
            stats.gate_count += 1;
            *stats
                .by_name
                .entry(inst.kind().name().to_string())
                .or_insert(0) += 1;
            match inst.kind() {
                OpKind::Measure => stats.measure_count += 1,
                OpKind::Reset => stats.reset_count += 1,
                OpKind::Gate(g) => {
                    if inst.is_conditioned() {
                        stats.conditioned_count += 1;
                    } else {
                        stats.unitary_count += 1;
                    }
                    if g.num_qubits() >= 2 {
                        stats.multi_qubit_count += 1;
                    }
                }
                OpKind::Barrier => unreachable!("barriers skipped above"),
            }
        }
        stats
    }

    /// Count of a specific mnemonic (e.g. `"t"`, `"cx"`).
    #[must_use]
    pub fn count_of(&self, name: &str) -> usize {
        self.by_name.get(name).copied().unwrap_or(0)
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qubits={} clbits={} gates={} depth={} (unitary={} measure={} reset={} conditioned={})",
            self.num_qubits,
            self.num_clbits,
            self.gate_count,
            self.depth,
            self.unitary_count,
            self.measure_count,
            self.reset_count,
            self.conditioned_count
        )
    }
}

/// Circuit depth.
///
/// Each wire (qubit or classical bit) carries a level counter; a non-barrier
/// instruction lands on level `1 + max(levels of its wires)` and raises all
/// of its wires to that level. A classically conditioned gate counts its
/// condition bits among its wires, so it is sequenced after the measurement
/// producing them — matching how IBM backends schedule dynamic circuits.
/// Barriers only align wire levels without consuming a slot.
#[must_use]
pub fn depth(circuit: &Circuit) -> usize {
    let mut qlevel = vec![0usize; circuit.num_qubits()];
    let mut clevel = vec![0usize; circuit.num_clbits()];
    let mut depth = 0usize;
    for inst in circuit.iter() {
        let wires_q: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
        let wires_c: Vec<usize> = inst
            .clbits_written()
            .iter()
            .copied()
            .chain(inst.clbits_read())
            .map(|c| c.index())
            .collect();
        let current = wires_q
            .iter()
            .map(|&w| qlevel[w])
            .chain(wires_c.iter().map(|&w| clevel[w]))
            .max()
            .unwrap_or(0);
        let new = if inst.is_barrier() {
            current
        } else {
            current + 1
        };
        for w in wires_q {
            qlevel[w] = new;
        }
        for w in wires_c {
            clevel[w] = new;
        }
        depth = depth.max(new);
    }
    depth
}

/// Number of non-barrier instructions (the paper's "gate count").
#[must_use]
pub fn gate_count(circuit: &Circuit) -> usize {
    circuit.iter().filter(|i| !i.is_barrier()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::instruction::{Condition, Instruction};
    use crate::register::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn depth_of_serial_chain() {
        let mut circ = Circuit::new(1, 0);
        circ.h(q(0)).t(q(0)).h(q(0));
        assert_eq!(depth(&circ), 3);
    }

    #[test]
    fn depth_of_parallel_gates_is_one() {
        let mut circ = Circuit::new(3, 0);
        circ.h(q(0)).h(q(1)).h(q(2));
        assert_eq!(depth(&circ), 1);
    }

    #[test]
    fn two_qubit_gates_merge_wire_levels() {
        let mut circ = Circuit::new(2, 0);
        circ.h(q(0)).cx(q(0), q(1)).x(q(1));
        assert_eq!(depth(&circ), 3);
    }

    #[test]
    fn measurement_and_condition_are_sequenced() {
        // measure q0 -> c0; X on q1 conditioned on c0. Although the gates
        // touch different qubits the classical wire sequences them.
        let mut circ = Circuit::new(2, 1);
        circ.measure(q(0), c(0)).x_if(q(1), c(0));
        assert_eq!(depth(&circ), 2);
    }

    #[test]
    fn reset_counts_toward_depth() {
        let mut circ = Circuit::new(1, 0);
        circ.h(q(0)).reset(q(0)).h(q(0));
        assert_eq!(depth(&circ), 3);
    }

    #[test]
    fn barriers_do_not_add_depth_but_align() {
        let mut circ = Circuit::new(2, 0);
        circ.h(q(0));
        circ.barrier_all();
        circ.h(q(1));
        // h(q1) must land after the barrier, which is at level 1.
        assert_eq!(depth(&circ), 2);
        assert_eq!(gate_count(&circ), 2);
    }

    #[test]
    fn stats_tally_kinds() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0)).cx(q(0), q(1));
        circ.measure(q(0), c(0));
        circ.reset(q(0));
        circ.push(Instruction::gate(Gate::X, vec![q(0)]).with_condition(Condition::bit(c(0))));
        let s = CircuitStats::of(&circ);
        assert_eq!(s.gate_count, 5);
        assert_eq!(s.unitary_count, 2);
        assert_eq!(s.measure_count, 1);
        assert_eq!(s.reset_count, 1);
        assert_eq!(s.conditioned_count, 1);
        assert_eq!(s.multi_qubit_count, 1);
        assert_eq!(s.count_of("x"), 1);
        assert_eq!(s.count_of("cx"), 1);
        assert_eq!(s.count_of("nope"), 0);
    }

    #[test]
    fn stats_display_mentions_depth() {
        let mut circ = Circuit::new(1, 0);
        circ.h(q(0));
        let text = CircuitStats::of(&circ).to_string();
        assert!(text.contains("depth=1"));
        assert!(text.contains("gates=1"));
    }

    #[test]
    fn empty_circuit_has_zero_depth() {
        assert_eq!(depth(&Circuit::new(4, 2)), 0);
        assert_eq!(gate_count(&Circuit::new(4, 2)), 0);
    }
}
