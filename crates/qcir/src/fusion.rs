//! Gate fusion: lowering runs of adjacent small gates to single unitaries.
//!
//! The shot executor's dominant cost on the paper's circuits is the gate
//! loop: each 1q/2q gate sweeps the full amplitude vector. Runs of adjacent
//! *unconditioned* gates whose combined support stays within two qubits can
//! instead be multiplied into one `4x4` (or `2x2`) matrix once, before the
//! shot loop, and applied with a single [`apply_matrix`] sweep.
//!
//! Because [`Gate`] is a closed enum (adding an arbitrary-unitary variant
//! would break the QASM round-trip), fusion does not rewrite the circuit —
//! it lowers it to a [`FusedProgram`]: a parallel instruction stream where
//! each element is either a [`FusedBlock`] (the product matrix plus the
//! original gate names, so per-gate tallies stay exact) or a passthrough
//! index into the source circuit. Consumers iterate the program and fall
//! back to the original instruction for everything that did not fuse:
//! measurements, resets, barriers, conditioned gates and gates of arity
//! three or more.
//!
//! Single unfused gates are deliberately left as passthroughs rather than
//! 1-gate "blocks": the simulator's specialized `apply_gate` fast paths beat
//! a generic matrix multiply, and — more importantly for the prefix engine —
//! a passthrough evolves the state through *bit-identical* float operations
//! to the per-shot executor.
//!
//! [`apply_matrix`]: https://docs.rs/qsim (StateVector::apply_matrix)

use crate::circuit::Circuit;
use crate::instruction::OpKind;
use qmath::CMatrix;

/// Most qubits a fused block may act on. Blocks stay within two qubits so
/// the fused matrix is at most `4x4` and the apply sweep stays cheap.
pub const MAX_FUSED_QUBITS: usize = 2;

/// One element of a [`FusedProgram`].
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// Two or more adjacent gates multiplied into one unitary.
    Block(FusedBlock),
    /// The instruction at this index of the source circuit, unchanged.
    Passthrough(usize),
}

/// A run of adjacent unconditioned gates collapsed to a single unitary.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedBlock {
    /// Wire indices the block acts on, ascending; operand `k` of
    /// [`FusedBlock::matrix`] lives on `qubits[k]`.
    pub qubits: Vec<usize>,
    /// The product of the member gates' embedded matrices, in application
    /// order (later gates multiplied on the left).
    pub matrix: CMatrix,
    /// Names of the member gates in original circuit order, so consumers
    /// can tally per-gate counters exactly as an unfused run would.
    pub gate_names: Vec<&'static str>,
}

/// A circuit lowered through gate fusion. Iterate [`FusedProgram::ops`]
/// alongside the source circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    ops: Vec<FusedOp>,
    stats: FusionStats,
}

/// What fusion achieved on a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FusionStats {
    /// Number of fused blocks emitted.
    pub blocks: usize,
    /// Gates absorbed into those blocks (each block absorbs ≥ 2).
    pub gates_fused: usize,
    /// Instructions passed through unchanged.
    pub passthrough: usize,
}

impl FusedProgram {
    /// The lowered instruction stream, in source order.
    #[must_use]
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Fusion statistics for observability.
    #[must_use]
    pub fn stats(&self) -> FusionStats {
        self.stats
    }
}

/// Lowers `circuit` through greedy adjacent-gate fusion.
///
/// Scans the instruction stream once, accumulating a block of consecutive
/// unconditioned gates while their combined support fits in
/// [`MAX_FUSED_QUBITS`] wires. Any measurement, reset, barrier, conditioned
/// gate or support overflow flushes the block: runs of two or more gates
/// become a [`FusedBlock`], single gates pass through untouched.
#[must_use]
pub fn fuse(circuit: &Circuit) -> FusedProgram {
    let mut ops = Vec::new();
    let mut stats = FusionStats::default();
    // The pending run: (source index, operand wires) per gate.
    let mut run: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut support: Vec<usize> = Vec::new();

    let flush = |run: &mut Vec<(usize, Vec<usize>)>,
                 support: &mut Vec<usize>,
                 ops: &mut Vec<FusedOp>,
                 stats: &mut FusionStats| {
        if run.len() >= 2 {
            ops.push(FusedOp::Block(build_block(circuit, run, support)));
            stats.blocks += 1;
            stats.gates_fused += run.len();
        } else if let Some((idx, _)) = run.first() {
            ops.push(FusedOp::Passthrough(*idx));
            stats.passthrough += 1;
        }
        run.clear();
        support.clear();
    };

    for (idx, inst) in circuit.instructions().iter().enumerate() {
        let fusable = matches!(inst.kind(), OpKind::Gate(g) if !inst.is_conditioned()
            && g.num_qubits() <= MAX_FUSED_QUBITS);
        if !fusable {
            flush(&mut run, &mut support, &mut ops, &mut stats);
            ops.push(FusedOp::Passthrough(idx));
            stats.passthrough += 1;
            continue;
        }
        let wires: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
        let mut union = support.clone();
        for &w in &wires {
            if !union.contains(&w) {
                union.push(w);
            }
        }
        if union.len() > MAX_FUSED_QUBITS {
            flush(&mut run, &mut support, &mut ops, &mut stats);
            support = wires.clone();
        } else {
            support = union;
        }
        run.push((idx, wires));
    }
    flush(&mut run, &mut support, &mut ops, &mut stats);
    FusedProgram { ops, stats }
}

/// Multiplies the run's gates into one embedded unitary on the sorted
/// support wires.
fn build_block(circuit: &Circuit, run: &[(usize, Vec<usize>)], support: &[usize]) -> FusedBlock {
    let mut qubits: Vec<usize> = support.to_vec();
    qubits.sort_unstable();
    let k = qubits.len();
    let mut matrix = CMatrix::identity(1 << k);
    let mut gate_names = Vec::with_capacity(run.len());
    for (idx, wires) in run {
        let gate = circuit.instructions()[*idx]
            .as_gate()
            .expect("fusion runs contain only gates");
        gate_names.push(gate.name());
        let local: Vec<usize> = wires
            .iter()
            .map(|w| {
                qubits
                    .iter()
                    .position(|q| q == w)
                    .expect("operand wire is in the block support")
            })
            .collect();
        // State evolution is left-multiplication: applying `gate` after the
        // accumulated product U gives G·U.
        matrix = gate.matrix().embed(&local, k).mul(&matrix);
    }
    FusedBlock {
        qubits,
        matrix,
        gate_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Condition;
    use crate::register::{Clbit, Qubit};
    use crate::Gate;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    /// Applies a fused program to a statevector-free reference: builds the
    /// full-circuit unitary both ways and compares.
    fn full_unitary(circuit: &Circuit) -> CMatrix {
        let n = circuit.num_qubits();
        let mut u = CMatrix::identity(1 << n);
        for inst in circuit.iter() {
            if inst.is_barrier() {
                continue;
            }
            let g = inst.as_gate().expect("unitary circuit");
            let wires: Vec<usize> = inst.qubits().iter().map(|qb| qb.index()).collect();
            u = g.matrix().embed(&wires, n).mul(&u);
        }
        u
    }

    fn fused_unitary(circuit: &Circuit, program: &FusedProgram) -> CMatrix {
        let n = circuit.num_qubits();
        let mut u = CMatrix::identity(1 << n);
        for op in program.ops() {
            match op {
                FusedOp::Block(b) => {
                    u = b.matrix.embed(&b.qubits, n).mul(&u);
                }
                FusedOp::Passthrough(idx) => {
                    let inst = &circuit.instructions()[*idx];
                    if inst.is_barrier() {
                        continue;
                    }
                    let g = inst.as_gate().expect("unitary circuit");
                    let wires: Vec<usize> = inst.qubits().iter().map(|qb| qb.index()).collect();
                    u = g.matrix().embed(&wires, n).mul(&u);
                }
            }
        }
        u
    }

    #[test]
    fn adjacent_single_qubit_gates_fuse_into_one_block() {
        let mut c = Circuit::new(1, 0);
        c.h(q(0)).t(q(0)).s(q(0)).x(q(0));
        let p = fuse(&c);
        assert_eq!(p.ops().len(), 1);
        let FusedOp::Block(b) = &p.ops()[0] else {
            panic!("expected one fused block, got {:?}", p.ops());
        };
        assert_eq!(b.qubits, vec![0]);
        assert_eq!(b.gate_names, vec!["h", "t", "s", "x"]);
        assert_eq!(p.stats().blocks, 1);
        assert_eq!(p.stats().gates_fused, 4);
        assert_eq!(p.stats().passthrough, 0);
        assert!(fused_unitary(&c, &p).approx_eq(&full_unitary(&c), 1e-12));
    }

    #[test]
    fn two_qubit_runs_fuse_and_match_the_unfused_unitary() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0)).cx(q(0), q(1)).t(q(1)).cx(q(0), q(1)).h(q(0));
        let p = fuse(&c);
        assert_eq!(p.ops().len(), 1, "{:?}", p.ops());
        assert!(fused_unitary(&c, &p).approx_eq(&full_unitary(&c), 1e-12));
    }

    #[test]
    fn support_overflow_splits_blocks() {
        // q0q1 run, then a gate touching q2 forces a new block.
        let mut c = Circuit::new(3, 0);
        c.h(q(0)).cx(q(0), q(1)).cx(q(1), q(2)).h(q(2));
        let p = fuse(&c);
        assert_eq!(p.ops().len(), 2, "{:?}", p.ops());
        assert_eq!(p.stats().blocks, 2);
        assert_eq!(p.stats().gates_fused, 4);
        assert!(fused_unitary(&c, &p).approx_eq(&full_unitary(&c), 1e-12));
    }

    #[test]
    fn single_gates_pass_through_unfused() {
        let mut c = Circuit::new(3, 0);
        c.h(q(0)).cx(q(1), q(2));
        let p = fuse(&c);
        assert_eq!(
            p.ops(),
            &[FusedOp::Passthrough(0), FusedOp::Passthrough(1)],
            "disjoint supports must not fuse"
        );
        assert_eq!(p.stats().blocks, 0);
        assert_eq!(p.stats().passthrough, 2);
    }

    #[test]
    fn measure_reset_barrier_and_conditions_flush() {
        let mut c = Circuit::new(2, 1);
        c.h(q(0)).t(q(0));
        c.measure(q(0), Clbit::new(0));
        c.h(q(0)).s(q(0));
        c.reset(q(0));
        c.barrier_all();
        c.push(
            crate::Instruction::gate(Gate::X, vec![q(0)])
                .with_condition(Condition::bit(Clbit::new(0))),
        );
        c.h(q(1));
        let p = fuse(&c);
        // [h t] fused, measure, [h s] fused, reset, barrier, cond-x, h.
        let kinds: Vec<bool> = p
            .ops()
            .iter()
            .map(|op| matches!(op, FusedOp::Block(_)))
            .collect();
        assert_eq!(
            kinds,
            vec![true, false, true, false, false, false, false],
            "{:?}",
            p.ops()
        );
        assert_eq!(p.stats().blocks, 2);
        assert_eq!(p.stats().gates_fused, 4);
        assert_eq!(p.stats().passthrough, 5);
    }

    #[test]
    fn three_qubit_gates_pass_through() {
        let mut c = Circuit::new(3, 0);
        c.h(q(0)).ccx(q(0), q(1), q(2)).h(q(0));
        let p = fuse(&c);
        assert_eq!(p.ops().len(), 3);
        assert!(p
            .ops()
            .iter()
            .all(|op| matches!(op, FusedOp::Passthrough(_))));
    }

    #[test]
    fn operand_order_is_preserved_in_the_block_matrix() {
        // cx q1,q0 (control on the higher wire) must not be transposed by
        // the ascending support sort.
        let mut c = Circuit::new(2, 0);
        c.h(q(1)).cx(q(1), q(0));
        let p = fuse(&c);
        assert_eq!(p.stats().blocks, 1);
        assert!(fused_unitary(&c, &p).approx_eq(&full_unitary(&c), 1e-12));
    }

    #[test]
    fn empty_circuit_lowers_to_empty_program() {
        let c = Circuit::new(2, 0);
        let p = fuse(&c);
        assert!(p.ops().is_empty());
        assert_eq!(p.stats(), FusionStats::default());
    }
}
