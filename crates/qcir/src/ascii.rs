//! Plain-text circuit diagrams.
//!
//! One column per instruction (no packing), one row per qubit wire plus one
//! per classical bit. Good enough to eyeball the iteration structure of a
//! dynamic circuit in a terminal or a test failure message.

use crate::circuit::Circuit;
use crate::instruction::OpKind;

/// Renders `circuit` as a text diagram.
///
/// Conventions: `●` marks a control, boxed mnemonics mark targets, `M`
/// marks measurement (with `↓` on the classical row), `|0>` marks reset,
/// and `?cN` prefixes on the classical row mark the bits a condition reads.
///
/// # Examples
///
/// ```
/// use qcir::{ascii, Circuit, Qubit};
/// let mut c = Circuit::new(2, 0);
/// c.h(Qubit::new(0)).cx(Qubit::new(0), Qubit::new(1));
/// let art = ascii::draw(&c);
/// assert!(art.contains("q0:"));
/// assert!(art.contains("H"));
/// ```
#[must_use]
pub fn draw(circuit: &Circuit) -> String {
    let nq = circuit.num_qubits();
    let nc = circuit.num_clbits();
    let mut qrows: Vec<Vec<String>> = vec![Vec::new(); nq];
    let mut crows: Vec<Vec<String>> = vec![Vec::new(); nc];

    for inst in circuit.iter() {
        let mut qcells: Vec<Option<String>> = vec![None; nq];
        let mut ccells: Vec<Option<String>> = vec![None; nc];
        match inst.kind() {
            OpKind::Gate(g) => {
                let n_ctrl = g.num_controls();
                for (k, q) in inst.qubits().iter().enumerate() {
                    let cell = if k < n_ctrl {
                        "●".to_string()
                    } else {
                        gate_label(g)
                    };
                    qcells[q.index()] = Some(cell);
                }
            }
            OpKind::Measure => {
                qcells[inst.qubits()[0].index()] = Some("M".to_string());
                ccells[inst.clbits()[0].index()] = Some("↓".to_string());
            }
            OpKind::Reset => {
                qcells[inst.qubits()[0].index()] = Some("|0>".to_string());
            }
            OpKind::Barrier => {
                for q in inst.qubits() {
                    qcells[q.index()] = Some("░".to_string());
                }
            }
        }
        if let Some(cond) = inst.condition() {
            for bit in cond.bits() {
                ccells[bit.index()] = Some("?".to_string());
            }
        }
        let width = qcells
            .iter()
            .chain(ccells.iter())
            .filter_map(|c| c.as_ref().map(|s| s.chars().count()))
            .max()
            .unwrap_or(1)
            + 2;
        for (i, cell) in qcells.into_iter().enumerate() {
            qrows[i].push(pad(cell.unwrap_or_default(), width, '─'));
        }
        for (i, cell) in ccells.into_iter().enumerate() {
            crows[i].push(pad(cell.unwrap_or_default(), width, '═'));
        }
    }

    let mut out = String::new();
    for (i, row) in qrows.iter().enumerate() {
        out.push_str(&format!("q{i}: ─{}\n", row.join("")));
    }
    for (i, row) in crows.iter().enumerate() {
        out.push_str(&format!("c{i}: ═{}\n", row.join("")));
    }
    out
}

fn gate_label(g: &crate::gate::Gate) -> String {
    use crate::gate::Gate;
    match g {
        Gate::Cx | Gate::Ccx | Gate::Mcx(_) | Gate::X => "X".to_string(),
        Gate::Cz | Gate::Ccz | Gate::Z => "Z".to_string(),
        Gate::Cy | Gate::Y => "Y".to_string(),
        Gate::Cv | Gate::V => "V".to_string(),
        Gate::Cvdg | Gate::Vdg => "V†".to_string(),
        Gate::Cp(t) | Gate::P(t) => format!("P({t:.2})"),
        Gate::Swap => "x".to_string(),
        g => g.name().to_uppercase(),
    }
}

fn pad(s: String, width: usize, fill: char) -> String {
    let len = s.chars().count();
    let total = width.saturating_sub(len);
    let left = total / 2;
    let right = total - left;
    let mut out = String::new();
    for _ in 0..left {
        out.push(fill);
    }
    out.push_str(&s);
    for _ in 0..right {
        out.push(fill);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn draws_controls_and_targets() {
        let mut circ = Circuit::new(2, 0);
        circ.cx(q(0), q(1));
        let art = draw(&circ);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains('●'));
        assert!(lines[1].contains('X'));
    }

    #[test]
    fn draws_measurement_onto_classical_row() {
        let mut circ = Circuit::new(1, 1);
        circ.measure(q(0), Clbit::new(0));
        let art = draw(&circ);
        assert!(art.lines().next().unwrap().contains('M'));
        assert!(art.lines().nth(1).unwrap().contains('↓'));
    }

    #[test]
    fn draws_reset_and_condition() {
        let mut circ = Circuit::new(1, 1);
        circ.reset(q(0)).x_if(q(0), Clbit::new(0));
        let art = draw(&circ);
        assert!(art.contains("|0>"));
        assert!(art.lines().nth(1).unwrap().contains('?'));
    }

    #[test]
    fn rows_have_equal_rendered_width() {
        let mut circ = Circuit::new(2, 1);
        circ.h(q(0)).cx(q(0), q(1)).measure(q(1), Clbit::new(0));
        let art = draw(&circ);
        let widths: Vec<usize> = art.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn toffoli_has_two_controls() {
        let mut circ = Circuit::new(3, 0);
        circ.ccx(q(0), q(1), q(2));
        let art = draw(&circ);
        let dots = art.matches('●').count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn empty_circuit_draws_wire_labels() {
        let art = draw(&Circuit::new(2, 1));
        assert!(art.contains("q0:"));
        assert!(art.contains("q1:"));
        assert!(art.contains("c0:"));
    }
}
