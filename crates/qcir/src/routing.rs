//! Qubit connectivity and SWAP-insertion routing.
//!
//! Real devices restrict two-qubit gates to coupled pairs. A traditional
//! `n`-qubit circuit must be *routed* — SWAPs inserted to bring interacting
//! qubits together — while a dynamic circuit needs exactly one coupled pair
//! per answer qubit. This module provides coupling maps and a simple
//! shortest-path router so that comparison can be made quantitatively.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::instruction::{Instruction, OpKind};
use crate::register::Qubit;

/// An undirected qubit-connectivity graph.
///
/// # Examples
///
/// ```
/// use qcir::routing::CouplingMap;
/// let line = CouplingMap::line(4);
/// assert!(line.coupled(1, 2));
/// assert!(!line.coupled(0, 3));
/// assert_eq!(line.distance(0, 3), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMap {
    num_qubits: usize,
    edges: Vec<(usize, usize)>,
}

impl CouplingMap {
    /// Builds a map from explicit undirected edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= num_qubits` or couples a
    /// qubit to itself.
    #[must_use]
    pub fn new(num_qubits: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(a, b) in &edges {
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-coupling ({a},{a})");
        }
        Self { num_qubits, edges }
    }

    /// A linear chain `0 - 1 - ... - (n-1)`.
    #[must_use]
    pub fn line(n: usize) -> Self {
        Self::new(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect())
    }

    /// A ring.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    #[must_use]
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 qubits");
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        Self::new(n, edges)
    }

    /// A star with qubit 0 at the centre.
    #[must_use]
    pub fn star(n: usize) -> Self {
        Self::new(n, (1..n).map(|i| (0, i)).collect())
    }

    /// All-to-all connectivity.
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        Self::new(n, edges)
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// `true` when `a` and `b` share an edge.
    #[must_use]
    pub fn coupled(&self, a: usize, b: usize) -> bool {
        self.edges
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Neighbours of `q`.
    #[must_use]
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// BFS shortest-path length between `a` and `b` (`None` when
    /// disconnected).
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        self.shortest_path(a, b).map(|p| p.len() - 1)
    }

    /// BFS shortest path from `a` to `b`, inclusive of both endpoints.
    #[must_use]
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a == b {
            return Some(vec![a]);
        }
        let mut prev = vec![usize::MAX; self.num_qubits];
        let mut queue = std::collections::VecDeque::from([a]);
        prev[a] = a;
        while let Some(cur) = queue.pop_front() {
            for nb in self.neighbors(cur) {
                if prev[nb] == usize::MAX {
                    prev[nb] = cur;
                    if nb == b {
                        let mut path = vec![b];
                        let mut p = b;
                        while p != a {
                            p = prev[p];
                            path.push(p);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(nb);
                }
            }
        }
        None
    }

    /// `true` when every pair of qubits is connected by some path.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.num_qubits <= 1 {
            return true;
        }
        (1..self.num_qubits).all(|q| self.distance(0, q).is_some())
    }
}

/// An error from [`route`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteError {
    message: String,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "routing failed: {}", self.message)
    }
}

impl std::error::Error for RouteError {}

/// The result of routing a circuit onto a coupling map.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The routed circuit (logical operations rewritten onto physical
    /// wires, SWAPs inserted).
    pub circuit: Circuit,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
    /// Final logical-to-physical layout: `layout[logical] = physical`.
    pub final_layout: Vec<usize>,
}

/// Routes `circuit` onto `map` with a greedy shortest-path strategy:
/// logical qubit `i` starts on physical qubit `i`; before each two-qubit
/// gate on non-adjacent qubits, SWAPs move the control along the shortest
/// path until adjacent. Gates on 3+ qubits must be decomposed first.
///
/// Measurement, reset, barriers and classical conditions route unchanged
/// (classical wiring has no connectivity constraint).
///
/// # Errors
///
/// Returns [`RouteError`] when the map has fewer qubits than the circuit,
/// is disconnected where needed, or the circuit contains gates on three or
/// more qubits.
pub fn route(circuit: &Circuit, map: &CouplingMap) -> Result<RoutedCircuit, RouteError> {
    if map.num_qubits() < circuit.num_qubits() {
        return Err(RouteError {
            message: format!(
                "coupling map has {} qubits, circuit needs {}",
                map.num_qubits(),
                circuit.num_qubits()
            ),
        });
    }
    // layout[logical] = physical; inverse[physical] = logical.
    let mut layout: Vec<usize> = (0..map.num_qubits()).collect();
    let mut inverse: Vec<usize> = (0..map.num_qubits()).collect();
    let mut out = Circuit::with_name(
        format!("{}_routed", circuit.name()),
        map.num_qubits(),
        circuit.num_clbits(),
    );
    let mut swaps = 0usize;

    for inst in circuit.iter() {
        match inst.kind() {
            OpKind::Gate(g) if g.num_qubits() > 2 => {
                return Err(RouteError {
                    message: format!("gate {g} acts on more than two qubits; decompose first"),
                });
            }
            OpKind::Gate(g) if g.num_qubits() == 2 => {
                let la = inst.qubits()[0].index();
                let lb = inst.qubits()[1].index();
                let (mut pa, pb) = (layout[la], layout[lb]);
                if !map.coupled(pa, pb) {
                    let path = map.shortest_path(pa, pb).ok_or_else(|| RouteError {
                        message: format!("no path between physical {pa} and {pb}"),
                    })?;
                    // Swap the first operand down the path until adjacent.
                    for &step in &path[1..path.len() - 1] {
                        out.push(Instruction::gate(
                            Gate::Swap,
                            vec![Qubit::new(pa), Qubit::new(step)],
                        ));
                        swaps += 1;
                        let (la_cur, lb_cur) = (inverse[pa], inverse[step]);
                        layout.swap(la_cur, lb_cur);
                        inverse.swap(pa, step);
                        pa = step;
                    }
                }
                let mapped = vec![Qubit::new(layout[la]), Qubit::new(layout[lb])];
                let mut e = Instruction::gate(g.clone(), mapped);
                if let Some(c) = inst.condition() {
                    e = e.with_condition(c.clone());
                }
                out.push(e);
            }
            _ => {
                // 1-qubit gates and non-unitary ops: remap wires only.
                let mapped: Vec<Qubit> = inst
                    .qubits()
                    .iter()
                    .map(|q| Qubit::new(layout[q.index()]))
                    .collect();
                let e = match inst.kind() {
                    OpKind::Gate(g) => {
                        let mut e = Instruction::gate(g.clone(), mapped);
                        if let Some(c) = inst.condition() {
                            e = e.with_condition(c.clone());
                        }
                        e
                    }
                    OpKind::Measure => Instruction::measure(mapped[0], inst.clbits()[0]),
                    OpKind::Reset => Instruction::reset(mapped[0]),
                    OpKind::Barrier => Instruction::barrier(mapped),
                };
                out.push(e);
            }
        }
    }
    Ok(RoutedCircuit {
        circuit: out,
        swaps_inserted: swaps,
        final_layout: layout,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn named_topologies_have_expected_edges() {
        assert!(CouplingMap::line(3).coupled(0, 1));
        assert!(!CouplingMap::line(3).coupled(0, 2));
        assert!(CouplingMap::ring(4).coupled(3, 0));
        assert!(CouplingMap::star(4).coupled(0, 3));
        assert!(!CouplingMap::star(4).coupled(1, 2));
        assert!(CouplingMap::full(4).coupled(1, 3));
    }

    #[test]
    fn distances_follow_topology() {
        assert_eq!(CouplingMap::line(5).distance(0, 4), Some(4));
        assert_eq!(CouplingMap::ring(6).distance(0, 5), Some(1));
        assert_eq!(CouplingMap::ring(6).distance(0, 3), Some(3));
        assert_eq!(CouplingMap::star(5).distance(2, 4), Some(2));
        let disconnected = CouplingMap::new(3, vec![(0, 1)]);
        assert_eq!(disconnected.distance(0, 2), None);
        assert!(!disconnected.is_connected());
        assert!(CouplingMap::line(4).is_connected());
    }

    #[test]
    fn shortest_path_endpoints() {
        let m = CouplingMap::line(4);
        assert_eq!(m.shortest_path(0, 3).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(m.shortest_path(2, 2).unwrap(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edges_rejected() {
        let _ = CouplingMap::new(2, vec![(0, 5)]);
    }

    #[test]
    fn adjacent_gates_route_without_swaps() {
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(1)).cx(q(1), q(2));
        let routed = route(&c, &CouplingMap::line(3)).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.len(), 2);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(2));
        let routed = route(&c, &CouplingMap::line(3)).unwrap();
        assert_eq!(routed.swaps_inserted, 1);
        // The CX executes on adjacent physical wires.
        let cx = routed
            .circuit
            .iter()
            .find(|i| i.as_gate() == Some(&Gate::Cx))
            .unwrap();
        let (a, b) = (cx.qubits()[0].index(), cx.qubits()[1].index());
        assert!(CouplingMap::line(3).coupled(a, b));
    }

    #[test]
    fn routed_circuit_preserves_semantics() {
        // Compare unitaries: routed circuit followed by undoing the final
        // layout permutation equals the original.
        let mut c = Circuit::new(4, 0);
        c.h(q(0))
            .cx(q(0), q(3))
            .cx(q(1), q(2))
            .cx(q(3), q(1))
            .t(q(2));
        let map = CouplingMap::line(4);
        let routed = route(&c, &map).unwrap();
        // Build a comparison circuit: routed + swaps restoring identity
        // layout.
        let mut fixed = routed.circuit.clone();
        let mut layout = routed.final_layout.clone();
        for logical in 0..4 {
            let phys = layout[logical];
            if phys != logical {
                fixed.swap(q(phys), q(logical));
                // Update bookkeeping: the logical qubit on `logical` moves.
                let other = layout.iter().position(|&p| p == logical).unwrap();
                layout.swap(logical, other);
            }
        }
        // Unitary comparison via gate matrices.
        let u_of = |circ: &Circuit| {
            let mut u = qmath::CMatrix::identity(1 << circ.num_qubits());
            for inst in circ.iter() {
                let pos: Vec<usize> = inst.qubits().iter().map(|x| x.index()).collect();
                u = inst
                    .as_gate()
                    .unwrap()
                    .matrix()
                    .embed(&pos, circ.num_qubits())
                    .mul(&u);
            }
            u
        };
        assert!(u_of(&fixed).approx_eq(&u_of(&c), 1e-9));
    }

    #[test]
    fn measurements_follow_their_qubits() {
        let mut c = Circuit::new(3, 1);
        c.cx(q(0), q(2)); // forces a swap
        c.measure(q(0), crate::register::Clbit::new(0));
        let routed = route(&c, &CouplingMap::line(3)).unwrap();
        let measure = routed
            .circuit
            .iter()
            .find(|i| matches!(i.kind(), OpKind::Measure))
            .unwrap();
        // Logical q0 moved to physical 1 by the swap.
        assert_eq!(measure.qubits()[0].index(), routed.final_layout[0]);
    }

    #[test]
    fn wide_gates_are_rejected() {
        let mut c = Circuit::new(3, 0);
        c.ccx(q(0), q(1), q(2));
        let err = route(&c, &CouplingMap::line(3)).unwrap_err();
        assert!(err.to_string().contains("more than two"));
    }

    #[test]
    fn small_maps_are_rejected() {
        let c = Circuit::new(5, 0);
        assert!(route(&c, &CouplingMap::line(3)).is_err());
    }

    #[test]
    fn dynamic_two_qubit_circuits_route_trivially() {
        // The DQC advantage: any 2-qubit dynamic circuit routes with zero
        // SWAPs on any connected map.
        let mut c = Circuit::new(2, 1);
        c.h(q(0))
            .cx(q(0), q(1))
            .measure(q(0), crate::register::Clbit::new(0))
            .reset(q(0))
            .x_if(q(0), crate::register::Clbit::new(0));
        for map in [
            CouplingMap::line(2),
            CouplingMap::line(5),
            CouplingMap::ring(4),
        ] {
            let routed = route(&c, &map).unwrap();
            assert_eq!(routed.swaps_inserted, 0);
        }
    }
}
