//! The quantum circuit container and builder API.

use crate::error::CircuitError;
use crate::gate::Gate;
use crate::instruction::{Condition, Instruction, OpKind};
use crate::register::{ClassicalRegister, Clbit, QuantumRegister, Qubit};
use std::fmt;

/// A quantum circuit: an ordered list of [`Instruction`]s over a set of
/// qubit wires and classical bits, with optional named registers.
///
/// Supports everything a *dynamic* quantum circuit needs — mid-circuit
/// measurement, active reset and classically controlled gates — in addition
/// to ordinary unitary gates.
///
/// Builder methods panic on out-of-range wires (they are index errors, like
/// slice indexing); the non-panicking [`Circuit::try_push`] is available for
/// programmatic construction from untrusted input.
///
/// # Examples
///
/// Building the 3-qubit circuit of the paper's Fig. 1,
/// `F(a, b) = a + b` (logical OR via XOR and AND):
///
/// ```
/// use qcir::{Circuit, Qubit};
///
/// let mut c = Circuit::new(3, 0);
/// let (a, b, t) = (Qubit::new(0), Qubit::new(1), Qubit::new(2));
/// c.cx(a, t).cx(b, t).ccx(a, b, t);
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.num_qubits(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    name: String,
    num_qubits: usize,
    num_clbits: usize,
    qregs: Vec<QuantumRegister>,
    cregs: Vec<ClassicalRegister>,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit with anonymous wires (no named registers).
    #[must_use]
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        Self {
            name: String::from("circuit"),
            num_qubits,
            num_clbits,
            qregs: Vec::new(),
            cregs: Vec::new(),
            instructions: Vec::new(),
        }
    }

    /// Creates an empty circuit with a name (used in reports and QASM).
    #[must_use]
    pub fn with_name(name: impl Into<String>, num_qubits: usize, num_clbits: usize) -> Self {
        let mut c = Self::new(num_qubits, num_clbits);
        c.name = name.into();
        c
    }

    /// The circuit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubit wires.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    #[must_use]
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Number of instructions (including barriers).
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` when the circuit holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends a new named quantum register, growing the wire count, and
    /// returns it.
    pub fn add_qreg(&mut self, name: impl Into<String>, size: usize) -> QuantumRegister {
        let reg = QuantumRegister::new(name, self.num_qubits, size);
        self.num_qubits += size;
        self.qregs.push(reg.clone());
        reg
    }

    /// Appends a new named classical register, growing the bit count, and
    /// returns it.
    pub fn add_creg(&mut self, name: impl Into<String>, size: usize) -> ClassicalRegister {
        let reg = ClassicalRegister::new(name, self.num_clbits, size);
        self.num_clbits += size;
        self.cregs.push(reg.clone());
        reg
    }

    /// Allocates one anonymous scratch classical bit, growing the bit count,
    /// and returns it.
    ///
    /// Scratch bits back mitigation rewrites (repeated-measurement ballots,
    /// reset-verification readings); they live outside any named register and
    /// extend the flat classical wire space at the high end, so existing bit
    /// indices are untouched.
    pub fn alloc_clbit(&mut self) -> Clbit {
        let bit = Clbit::new(self.num_clbits);
        self.num_clbits += 1;
        bit
    }

    /// Allocates `n` consecutive scratch classical bits (see
    /// [`Circuit::alloc_clbit`]).
    pub fn alloc_clbits(&mut self, n: usize) -> Vec<Clbit> {
        (0..n).map(|_| self.alloc_clbit()).collect()
    }

    /// The circuit's named quantum registers.
    #[must_use]
    pub fn qregs(&self) -> &[QuantumRegister] {
        &self.qregs
    }

    /// The circuit's named classical registers.
    #[must_use]
    pub fn cregs(&self) -> &[ClassicalRegister] {
        &self.cregs
    }

    /// The instructions in execution order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// A canonical 64-bit content hash of the circuit's semantics: the wire
    /// counts plus the full instruction stream (operation, gate parameters
    /// bit-exactly, operand wires, condition structure).
    ///
    /// The hash deliberately ignores the circuit *name* and the register
    /// partition — two circuits that act identically on the same flat wires
    /// hash identically even when their registers are named or grouped
    /// differently. Because [`crate::qasm::to_qasm`] prints parameters with
    /// round-trippable precision, the hash is stable across emit → parse
    /// cycles, which is what makes it usable as a transform-cache key.
    ///
    /// FNV-1a over a length-prefixed encoding; collisions are possible in
    /// principle (it is a 64-bit digest, not a cryptographic commitment),
    /// so equal hashes mean "same cache slot", not a proof of equality.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        struct Fnv(u64);
        impl Fnv {
            fn byte(&mut self, b: u8) {
                self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
            fn word(&mut self, v: u64) {
                for b in v.to_le_bytes() {
                    self.byte(b);
                }
            }
            fn text(&mut self, s: &str) {
                self.word(s.len() as u64);
                for b in s.bytes() {
                    self.byte(b);
                }
            }
        }
        let mut h = Fnv(FNV_OFFSET);
        h.word(self.num_qubits as u64);
        h.word(self.num_clbits as u64);
        h.word(self.instructions.len() as u64);
        for inst in &self.instructions {
            h.text(inst.kind().name());
            if let Some(gate) = inst.as_gate() {
                let params = gate.params();
                h.word(params.len() as u64);
                for p in params {
                    h.word(p.to_bits());
                }
            }
            h.word(inst.qubits().len() as u64);
            for q in inst.qubits() {
                h.word(q.index() as u64);
            }
            h.word(inst.clbits().len() as u64);
            for c in inst.clbits() {
                h.word(c.index() as u64);
            }
            match inst.condition() {
                None => h.byte(0),
                Some(Condition::Bit { bit, value }) => {
                    h.byte(1);
                    h.word(bit.index() as u64);
                    h.byte(u8::from(*value));
                }
                Some(Condition::Register { bits, value }) => {
                    h.byte(2);
                    h.word(bits.len() as u64);
                    for b in bits {
                        h.word(b.index() as u64);
                    }
                    h.word(*value);
                }
                Some(Condition::Voted { groups, value }) => {
                    h.byte(3);
                    h.word(groups.len() as u64);
                    for group in groups {
                        h.word(group.len() as u64);
                        for b in group {
                            h.word(b.index() as u64);
                        }
                    }
                    h.word(*value);
                }
            }
        }
        h.0
    }

    /// Appends an instruction after validating its wires.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] or
    /// [`CircuitError::ClbitOutOfRange`] when an operand exceeds the wire
    /// counts.
    pub fn try_push(&mut self, instruction: Instruction) -> Result<(), CircuitError> {
        for q in instruction.qubits() {
            if q.index() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q.index(),
                    num_qubits: self.num_qubits,
                });
            }
        }
        for c in instruction
            .clbits()
            .iter()
            .copied()
            .chain(instruction.clbits_read())
        {
            if c.index() >= self.num_clbits {
                return Err(CircuitError::ClbitOutOfRange {
                    clbit: c.index(),
                    num_clbits: self.num_clbits,
                });
            }
        }
        self.instructions.push(instruction);
        Ok(())
    }

    /// Checks the whole circuit for well-formedness: every operand within
    /// the wire counts, every condition reading at least one in-range bit,
    /// vote groups odd-sized, and comparison values representable in the
    /// bits a condition reads.
    ///
    /// [`Circuit::try_push`] already guards the wire bounds on insertion,
    /// but [`Condition`]'s fields are public (and deserialized circuits may
    /// arrive from untrusted QASM), so invariants the smart constructors
    /// assert can be bypassed. Ingestion boundaries — the CLI and
    /// `dqc::Pipeline` — run this pass so malformed circuits fail with a
    /// typed error here instead of a panic deep in the simulator.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, tagged with the offending
    /// instruction's index.
    pub fn validate(&self) -> Result<(), CircuitError> {
        for (at, inst) in self.instructions.iter().enumerate() {
            for q in inst.qubits() {
                if q.index() >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        qubit: q.index(),
                        num_qubits: self.num_qubits,
                    });
                }
            }
            for c in inst.clbits().iter().copied().chain(inst.clbits_read()) {
                if c.index() >= self.num_clbits {
                    return Err(CircuitError::ClbitOutOfRange {
                        clbit: c.index(),
                        num_clbits: self.num_clbits,
                    });
                }
            }
            if let Some(cond) = inst.condition() {
                self.validate_condition(at, cond)?;
            }
        }
        Ok(())
    }

    /// Structural checks for one condition (bounds were already checked).
    fn validate_condition(&self, at: usize, cond: &Condition) -> Result<(), CircuitError> {
        let check_width = |width: usize, value: u64| -> Result<(), CircuitError> {
            if width == 0 {
                return Err(CircuitError::EmptyCondition { at });
            }
            if width > u64::BITS as usize {
                return Err(CircuitError::ConditionTooWide { at, width });
            }
            if width < u64::BITS as usize && value >= 1u64 << width {
                return Err(CircuitError::ConditionOverflow { at, value, width });
            }
            Ok(())
        };
        match cond {
            Condition::Bit { .. } => Ok(()),
            Condition::Register { bits, value } => check_width(bits.len(), *value),
            Condition::Voted { groups, value } => {
                check_width(groups.len(), *value)?;
                for group in groups {
                    if group.is_empty() {
                        return Err(CircuitError::EmptyCondition { at });
                    }
                    if group.len() % 2 == 0 {
                        return Err(CircuitError::BadVoteGroup {
                            at,
                            len: group.len(),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of range; see [`Circuit::try_push`].
    pub fn push(&mut self, instruction: Instruction) -> &mut Self {
        self.try_push(instruction)
            .unwrap_or_else(|e| panic!("invalid instruction: {e}"));
        self
    }

    /// Appends `gate` on `qubits`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range operands.
    pub fn gate(&mut self, gate: Gate, qubits: &[Qubit]) -> &mut Self {
        self.push(Instruction::gate(gate, qubits.to_vec()))
    }

    /// Appends `gate` on `qubits` under classical `condition`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range operands.
    pub fn gate_if(&mut self, gate: Gate, qubits: &[Qubit], condition: Condition) -> &mut Self {
        self.push(Instruction::gate(gate, qubits.to_vec()).with_condition(condition))
    }

    // --- single-qubit gate sugar -----------------------------------------

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::H, &[q])
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::X, &[q])
    }

    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::Y, &[q])
    }

    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::Z, &[q])
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::S, &[q])
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::Sdg, &[q])
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::T, &[q])
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::Tdg, &[q])
    }

    /// Appends a V = sqrt(X) gate.
    pub fn v(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::V, &[q])
    }

    /// Appends a V† gate.
    pub fn vdg(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::Vdg, &[q])
    }

    /// Appends a phase gate `P(theta)`.
    pub fn p(&mut self, theta: f64, q: Qubit) -> &mut Self {
        self.gate(Gate::P(theta), &[q])
    }

    /// Appends an `Rx(theta)` rotation.
    pub fn rx(&mut self, theta: f64, q: Qubit) -> &mut Self {
        self.gate(Gate::Rx(theta), &[q])
    }

    /// Appends an `Ry(theta)` rotation.
    pub fn ry(&mut self, theta: f64, q: Qubit) -> &mut Self {
        self.gate(Gate::Ry(theta), &[q])
    }

    /// Appends an `Rz(theta)` rotation.
    pub fn rz(&mut self, theta: f64, q: Qubit) -> &mut Self {
        self.gate(Gate::Rz(theta), &[q])
    }

    // --- multi-qubit gate sugar -------------------------------------------

    /// Appends a CNOT with `control` and `target`.
    pub fn cx(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.gate(Gate::Cx, &[control, target])
    }

    /// Appends a controlled-Y.
    pub fn cy(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.gate(Gate::Cy, &[control, target])
    }

    /// Appends a controlled-Z.
    pub fn cz(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.gate(Gate::Cz, &[control, target])
    }

    /// Appends a controlled phase `CP(theta)`.
    pub fn cp(&mut self, theta: f64, control: Qubit, target: Qubit) -> &mut Self {
        self.gate(Gate::Cp(theta), &[control, target])
    }

    /// Appends a controlled-V (controlled sqrt-NOT).
    pub fn cv(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.gate(Gate::Cv, &[control, target])
    }

    /// Appends a controlled-V†.
    pub fn cvdg(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.gate(Gate::Cvdg, &[control, target])
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.gate(Gate::Swap, &[a, b])
    }

    /// Appends a Toffoli gate `CCX([c0, c1], target)`.
    pub fn ccx(&mut self, c0: Qubit, c1: Qubit, target: Qubit) -> &mut Self {
        self.gate(Gate::Ccx, &[c0, c1, target])
    }

    /// Appends a doubly controlled Z.
    pub fn ccz(&mut self, c0: Qubit, c1: Qubit, target: Qubit) -> &mut Self {
        self.gate(Gate::Ccz, &[c0, c1, target])
    }

    /// Appends a multiple-control Toffoli.
    ///
    /// # Panics
    ///
    /// Panics if `controls` is empty.
    pub fn mcx(&mut self, controls: &[Qubit], target: Qubit) -> &mut Self {
        assert!(!controls.is_empty(), "mcx needs at least one control");
        let mut qs = controls.to_vec();
        qs.push(target);
        self.gate(Gate::Mcx(controls.len()), &qs)
    }

    // --- non-unitary operations -------------------------------------------

    /// Appends a measurement of `qubit` into `clbit`.
    pub fn measure(&mut self, qubit: Qubit, clbit: Clbit) -> &mut Self {
        self.push(Instruction::measure(qubit, clbit))
    }

    /// Appends an active reset of `qubit` to `|0>`.
    pub fn reset(&mut self, qubit: Qubit) -> &mut Self {
        self.push(Instruction::reset(qubit))
    }

    /// Appends a barrier across all qubits.
    pub fn barrier_all(&mut self) -> &mut Self {
        let qs: Vec<Qubit> = (0..self.num_qubits).map(Qubit::new).collect();
        self.push(Instruction::barrier(qs))
    }

    /// Appends a barrier across `qubits`.
    pub fn barrier(&mut self, qubits: &[Qubit]) -> &mut Self {
        self.push(Instruction::barrier(qubits.to_vec()))
    }

    /// Appends an X gate conditioned on classical `bit == 1` — the classically
    /// controlled inversion used pervasively by dynamic circuits.
    pub fn x_if(&mut self, q: Qubit, bit: Clbit) -> &mut Self {
        self.gate_if(Gate::X, &[q], Condition::bit(bit))
    }

    /// Measures every qubit into the classical bit of equal index.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has fewer classical bits than qubits.
    pub fn measure_all(&mut self) -> &mut Self {
        assert!(
            self.num_clbits >= self.num_qubits,
            "measure_all needs at least as many clbits ({}) as qubits ({})",
            self.num_clbits,
            self.num_qubits
        );
        for q in 0..self.num_qubits {
            self.measure(Qubit::new(q), Clbit::new(q));
        }
        self
    }

    // --- whole-circuit operations ------------------------------------------

    /// Appends every instruction of `other`, mapping `other`'s qubit `k` to
    /// `qubit_map[k]` and clbit `k` to `clbit_map[k]`.
    ///
    /// # Panics
    ///
    /// Panics if a map is shorter than `other`'s wire count or maps onto
    /// out-of-range wires of `self`.
    pub fn compose(
        &mut self,
        other: &Circuit,
        qubit_map: &[Qubit],
        clbit_map: &[Clbit],
    ) -> &mut Self {
        assert!(
            qubit_map.len() >= other.num_qubits,
            "qubit map covers {} of {} qubits",
            qubit_map.len(),
            other.num_qubits
        );
        assert!(
            clbit_map.len() >= other.num_clbits,
            "clbit map covers {} of {} clbits",
            clbit_map.len(),
            other.num_clbits
        );
        for inst in &other.instructions {
            self.push(inst.remapped(qubit_map, clbit_map));
        }
        self
    }

    /// Appends every instruction of `other` onto the same-indexed wires.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more wires than `self`.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        let qmap: Vec<Qubit> = (0..other.num_qubits).map(Qubit::new).collect();
        let cmap: Vec<Clbit> = (0..other.num_clbits).map(Clbit::new).collect();
        self.compose(other, &qmap, &cmap)
    }

    /// Returns the inverse circuit (gates reversed and inverted).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotUnitary`] when the circuit contains
    /// measurement, reset or classically conditioned operations, which have
    /// no inverse.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::with_name(
            format!("{}_dg", self.name),
            self.num_qubits,
            self.num_clbits,
        );
        out.qregs = self.qregs.clone();
        out.cregs = self.cregs.clone();
        for inst in self.instructions.iter().rev() {
            if inst.is_conditioned() || inst.kind().is_nonunitary() {
                return Err(CircuitError::NotUnitary {
                    what: inst.to_string(),
                });
            }
            match inst.kind() {
                OpKind::Gate(g) => {
                    out.push(Instruction::gate(g.inverse(), inst.qubits().to_vec()));
                }
                OpKind::Barrier => {
                    out.push(inst.clone());
                }
                _ => unreachable!("non-unitary handled above"),
            }
        }
        Ok(out)
    }

    /// `true` when the circuit contains only unconditioned unitary gates and
    /// barriers (i.e. it has a well-defined unitary matrix).
    #[must_use]
    pub fn is_unitary_only(&self) -> bool {
        self.instructions
            .iter()
            .all(|i| !i.kind().is_nonunitary() && !i.is_conditioned())
    }

    /// `true` when the circuit uses any dynamic-circuit primitive
    /// (mid-circuit measurement followed by more operations, reset, or
    /// classical conditions).
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        let last_quantum_op = self
            .instructions
            .iter()
            .rposition(|i| !i.kind().is_nonunitary() && !i.is_barrier());
        self.instructions.iter().enumerate().any(|(idx, i)| {
            matches!(i.kind(), OpKind::Reset)
                || i.is_conditioned()
                || (matches!(i.kind(), OpKind::Measure) && last_quantum_op.is_some_and(|l| idx < l))
        })
    }

    /// All qubits referenced by at least one instruction.
    #[must_use]
    pub fn active_qubits(&self) -> Vec<Qubit> {
        let mut seen = vec![false; self.num_qubits];
        for inst in &self.instructions {
            for q in inst.qubits() {
                seen[q.index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(Qubit::new(i)))
            .collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} qubits, {} clbits):",
            self.name, self.num_qubits, self.num_clbits
        )?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn builder_chains_and_counts() {
        let mut circ = Circuit::new(2, 1);
        circ.h(q(0)).cx(q(0), q(1)).measure(q(1), c(0));
        assert_eq!(circ.len(), 3);
        assert!(!circ.is_empty());
        assert_eq!(circ.num_qubits(), 2);
        assert_eq!(circ.num_clbits(), 1);
    }

    #[test]
    fn alloc_clbit_extends_wire_space_at_the_high_end() {
        let mut circ = Circuit::new(1, 2);
        let s0 = circ.alloc_clbit();
        let more = circ.alloc_clbits(2);
        assert_eq!(s0, c(2));
        assert_eq!(more, vec![c(3), c(4)]);
        assert_eq!(circ.num_clbits(), 5);
        // Freshly allocated bits are immediately valid instruction operands.
        circ.measure(q(0), more[1]);
        assert_eq!(circ.instructions().last().unwrap().clbits(), &[c(4)]);
    }

    #[test]
    fn registers_grow_wire_counts() {
        let mut circ = Circuit::new(0, 0);
        let d = circ.add_qreg("d", 2);
        let a = circ.add_qreg("a", 1);
        let m = circ.add_creg("m", 2);
        assert_eq!(circ.num_qubits(), 3);
        assert_eq!(circ.num_clbits(), 2);
        assert_eq!(d.qubit(1), q(1));
        assert_eq!(a.qubit(0), q(2));
        assert_eq!(m.bit(0), c(0));
        assert_eq!(circ.qregs().len(), 2);
        assert_eq!(circ.cregs().len(), 1);
    }

    #[test]
    fn try_push_rejects_out_of_range_qubit() {
        let mut circ = Circuit::new(1, 0);
        let err = circ
            .try_push(Instruction::gate(Gate::X, vec![q(1)]))
            .unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
    }

    #[test]
    fn try_push_rejects_out_of_range_condition_bit() {
        let mut circ = Circuit::new(1, 1);
        let inst = Instruction::gate(Gate::X, vec![q(0)]).with_condition(Condition::bit(c(3)));
        assert!(matches!(
            circ.try_push(inst),
            Err(CircuitError::ClbitOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid instruction")]
    fn push_panics_on_bad_wire() {
        let mut circ = Circuit::new(1, 0);
        circ.x(q(5));
    }

    #[test]
    fn compose_remaps_wires() {
        let mut inner = Circuit::new(2, 1);
        inner.cx(q(0), q(1)).measure(q(1), c(0));
        let mut outer = Circuit::new(3, 2);
        outer.compose(&inner, &[q(2), q(0)], &[c(1)]);
        assert_eq!(outer.instructions()[0].qubits(), &[q(2), q(0)]);
        assert_eq!(outer.instructions()[1].clbits_written(), &[c(1)]);
    }

    #[test]
    fn extend_preserves_wires() {
        let mut a = Circuit::new(2, 0);
        a.h(q(0));
        let mut b = Circuit::new(2, 0);
        b.cx(q(0), q(1));
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.instructions()[1].qubits(), &[q(0), q(1)]);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut circ = Circuit::new(1, 0);
        circ.h(q(0)).t(q(0));
        let inv = circ.inverse().unwrap();
        assert_eq!(inv.instructions()[0].as_gate(), Some(&Gate::Tdg));
        assert_eq!(inv.instructions()[1].as_gate(), Some(&Gate::H));
        assert_eq!(inv.name(), "circuit_dg");
    }

    #[test]
    fn inverse_fails_on_measurement() {
        let mut circ = Circuit::new(1, 1);
        circ.measure(q(0), c(0));
        assert!(matches!(
            circ.inverse(),
            Err(CircuitError::NotUnitary { .. })
        ));
    }

    #[test]
    fn unitary_only_and_dynamic_classification() {
        let mut u = Circuit::new(2, 0);
        u.h(q(0)).cx(q(0), q(1));
        assert!(u.is_unitary_only());
        assert!(!u.is_dynamic());

        // Terminal measurement alone is not "dynamic".
        let mut m = Circuit::new(1, 1);
        m.h(q(0)).measure(q(0), c(0));
        assert!(!m.is_dynamic());

        // Mid-circuit measurement is.
        let mut mid = Circuit::new(1, 1);
        mid.measure(q(0), c(0)).h(q(0));
        assert!(mid.is_dynamic());

        // Reset is.
        let mut r = Circuit::new(1, 0);
        r.reset(q(0));
        assert!(r.is_dynamic());

        // Classical condition is.
        let mut cc = Circuit::new(1, 1);
        cc.x_if(q(0), c(0));
        assert!(cc.is_dynamic());
        assert!(!cc.is_unitary_only());
    }

    #[test]
    fn active_qubits_skips_idle_wires() {
        let mut circ = Circuit::new(3, 0);
        circ.h(q(2));
        assert_eq!(circ.active_qubits(), vec![q(2)]);
    }

    #[test]
    fn measure_all_measures_in_order() {
        let mut circ = Circuit::new(2, 2);
        circ.measure_all();
        assert_eq!(circ.len(), 2);
        assert_eq!(circ.instructions()[1].qubits(), &[q(1)]);
        assert_eq!(circ.instructions()[1].clbits_written(), &[c(1)]);
    }

    #[test]
    #[should_panic(expected = "measure_all needs")]
    fn measure_all_requires_clbits() {
        let mut circ = Circuit::new(2, 1);
        circ.measure_all();
    }

    #[test]
    fn mcx_builds_wide_gates() {
        let mut circ = Circuit::new(4, 0);
        circ.mcx(&[q(0), q(1), q(2)], q(3));
        assert_eq!(circ.instructions()[0].as_gate(), Some(&Gate::Mcx(3)));
    }

    #[test]
    fn display_lists_instructions() {
        let mut circ = Circuit::with_name("demo", 1, 1);
        circ.h(q(0)).measure(q(0), c(0));
        let text = circ.to_string();
        assert!(text.contains("demo (1 qubits, 1 clbits)"));
        assert!(text.contains("h q0"));
        assert!(text.contains("measure q0 -> c0"));
    }

    #[test]
    fn into_iterator_yields_instructions() {
        let mut circ = Circuit::new(1, 0);
        circ.h(q(0)).x(q(0));
        let names: Vec<_> = (&circ)
            .into_iter()
            .map(|i| i.kind().name().to_string())
            .collect();
        assert_eq!(names, vec!["h", "x"]);
    }

    #[test]
    fn validate_accepts_well_formed_dynamic_circuits() {
        let mut circ = Circuit::new(2, 3);
        circ.h(q(0)).measure(q(0), c(0)).x_if(q(1), c(0));
        circ.push(
            Instruction::gate(Gate::X, vec![q(1)])
                .with_condition(Condition::voted(vec![vec![c(0), c(1), c(2)]], 1)),
        );
        assert_eq!(circ.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bypassed_condition_invariants() {
        // Condition's fields are public, so the smart-constructor
        // invariants can be bypassed; try_push only checks wire bounds.
        let mut empty = Circuit::new(1, 1);
        empty.push(
            Instruction::gate(Gate::X, vec![q(0)]).with_condition(Condition::Register {
                bits: vec![],
                value: 0,
            }),
        );
        assert_eq!(
            empty.validate(),
            Err(CircuitError::EmptyCondition { at: 0 })
        );

        let mut even = Circuit::new(1, 2);
        even.push(
            Instruction::gate(Gate::X, vec![q(0)]).with_condition(Condition::Voted {
                groups: vec![vec![c(0), c(1)]],
                value: 1,
            }),
        );
        assert_eq!(
            even.validate(),
            Err(CircuitError::BadVoteGroup { at: 0, len: 2 })
        );

        let mut overflow = Circuit::new(1, 2);
        overflow.push(
            Instruction::gate(Gate::X, vec![q(0)]).with_condition(Condition::Register {
                bits: vec![c(0), c(1)],
                value: 4,
            }),
        );
        assert_eq!(
            overflow.validate(),
            Err(CircuitError::ConditionOverflow {
                at: 0,
                value: 4,
                width: 2
            })
        );
    }

    #[test]
    fn validate_rejects_over_wide_conditions() {
        let mut circ = Circuit::new(1, 65);
        let bits: Vec<Clbit> = (0..65).map(Clbit::new).collect();
        circ.push(
            Instruction::gate(Gate::X, vec![q(0)])
                .with_condition(Condition::Register { bits, value: 0 }),
        );
        assert_eq!(
            circ.validate(),
            Err(CircuitError::ConditionTooWide { at: 0, width: 65 })
        );
    }

    /// A dynamic circuit exercising every hashed dimension: a parameterised
    /// rotation (full-precision float), measurement, reset, and a condition.
    fn hash_probe() -> Circuit {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0))
            .rz(0.1 + 0.2, q(0)) // deliberately not a round float
            .cx(q(0), q(1))
            .measure(q(0), c(0));
        circ.reset(q(0));
        circ.x_if(q(1), c(0));
        circ.measure(q(1), c(1));
        circ
    }

    #[test]
    fn content_hash_survives_emit_parse_cycles() {
        let circ = hash_probe();
        let original = circ.content_hash();
        let reparsed = crate::qasm::from_qasm(&crate::qasm::to_qasm(&circ)).expect("round-trip");
        assert_eq!(reparsed.content_hash(), original);
        // A second cycle must be a fixed point too (idempotence, not luck).
        let twice =
            crate::qasm::from_qasm(&crate::qasm::to_qasm(&reparsed)).expect("second round-trip");
        assert_eq!(twice.content_hash(), original);
    }

    #[test]
    fn content_hash_ignores_names_but_not_semantics() {
        let a = hash_probe();
        let mut named = Circuit::with_name("renamed", 2, 2);
        for inst in a.iter() {
            named.push(inst.clone());
        }
        assert_eq!(named.content_hash(), a.content_hash());

        // Any semantic edit moves the hash: an extra gate, a different
        // parameter, a different operand, a different condition value.
        let mut extra = a.clone();
        extra.x(q(0));
        assert_ne!(extra.content_hash(), a.content_hash());

        let mut param = Circuit::new(2, 2);
        for inst in a.iter() {
            param.push(inst.clone());
        }
        param.rz(0.25, q(0));
        let mut param2 = Circuit::new(2, 2);
        for inst in a.iter() {
            param2.push(inst.clone());
        }
        param2.rz(0.75, q(0));
        assert_ne!(param.content_hash(), param2.content_hash());

        let mut wide = Circuit::new(3, 2);
        for inst in a.iter() {
            wide.push(inst.clone());
        }
        assert_ne!(wide.content_hash(), a.content_hash());
    }

    #[test]
    fn content_hash_distinguishes_condition_shapes() {
        let base = |cond: Option<Condition>| {
            let mut circ = Circuit::new(1, 3);
            let mut inst = Instruction::gate(Gate::X, vec![q(0)]);
            if let Some(cond) = cond {
                inst = inst.with_condition(cond);
            }
            circ.push(inst);
            circ.content_hash()
        };
        let plain = base(None);
        let bit = base(Some(Condition::bit(c(0))));
        let reg = base(Some(Condition::Register {
            bits: vec![c(0), c(1)],
            value: 1,
        }));
        let voted = base(Some(Condition::voted(vec![vec![c(0), c(1), c(2)]], 1)));
        let all = [plain, bit, reg, voted];
        for (i, x) in all.iter().enumerate() {
            for (j, y) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y, "shapes {i} and {j} collided");
                }
            }
        }
    }
}
