//! OpenQASM 3 export and a matching minimal importer.
//!
//! The exporter emits the dynamic-circuit subset of OpenQASM 3: gate calls,
//! `ctrl @` modifiers for the CV family, measurement assignment, `reset` and
//! single-line `if` statements. The importer parses exactly the subset the
//! exporter produces (plus whitespace/comment freedom), which is enough for
//! round-trip persistence of every circuit in this workspace.

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::instruction::{Condition, Instruction, OpKind};
use crate::register::{Clbit, Qubit};
use std::error::Error;
use std::fmt;

/// Serializes `circuit` to OpenQASM 3 text.
///
/// Wires are emitted as a single `qubit[n] q;` / `bit[m] c;` pair regardless
/// of the circuit's named registers, so positions are stable for the
/// importer.
///
/// # Examples
///
/// ```
/// use qcir::{qasm, Circuit, Qubit, Clbit};
/// let mut c = Circuit::new(1, 1);
/// c.h(Qubit::new(0)).measure(Qubit::new(0), Clbit::new(0));
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("c[0] = measure q[0];"));
/// ```
#[must_use]
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 3.0;\n");
    out.push_str("include \"stdgates.inc\";\n");
    if circuit.num_qubits() > 0 {
        out.push_str(&format!("qubit[{}] q;\n", circuit.num_qubits()));
    }
    if circuit.num_clbits() > 0 {
        out.push_str(&format!("bit[{}] c;\n", circuit.num_clbits()));
    }
    for inst in circuit.iter() {
        let line = match inst.kind() {
            OpKind::Gate(g) => gate_call(g, inst.qubits()),
            OpKind::Measure => format!(
                "c[{}] = measure q[{}];",
                inst.clbits()[0].index(),
                inst.qubits()[0].index()
            ),
            OpKind::Reset => format!("reset q[{}];", inst.qubits()[0].index()),
            OpKind::Barrier => {
                let qs: Vec<String> = inst
                    .qubits()
                    .iter()
                    .map(|q| format!("q[{}]", q.index()))
                    .collect();
                format!("barrier {};", qs.join(", "))
            }
        };
        match inst.condition() {
            Some(cond) => {
                out.push_str(&format!("if ({}) {{ {} }}\n", condition_expr(cond), line));
            }
            None => {
                out.push_str(&line);
                out.push('\n');
            }
        }
    }
    out
}

fn condition_expr(cond: &Condition) -> String {
    match cond {
        Condition::Bit { bit, value } => {
            format!("c[{}] == {}", bit.index(), u8::from(*value))
        }
        Condition::Register { bits, value } => {
            let mut parts = Vec::new();
            for (k, b) in bits.iter().enumerate() {
                parts.push(format!("c[{}] == {}", b.index(), (value >> k) & 1));
            }
            parts.join(" && ")
        }
        Condition::Voted { groups, value } => {
            // A group of repeated readings becomes an integer comparison on
            // the sum of its bits: majority-1 is `sum >= ceil(n/2)`,
            // majority-0 is `sum <= floor(n/2) - ...` i.e. `sum < ceil(n/2)`.
            let mut parts = Vec::new();
            for (k, g) in groups.iter().enumerate() {
                let sum: Vec<String> = g.iter().map(|b| format!("c[{}]", b.index())).collect();
                let sum = sum.join(" + ");
                let threshold = g.len() / 2 + 1;
                if (value >> k) & 1 == 1 {
                    parts.push(format!("{sum} >= {threshold}"));
                } else {
                    parts.push(format!("{sum} <= {}", threshold - 1));
                }
            }
            parts.join(" && ")
        }
    }
}

fn gate_call(gate: &Gate, qubits: &[Qubit]) -> String {
    let args: Vec<String> = qubits.iter().map(|q| format!("q[{}]", q.index())).collect();
    let args = args.join(", ");
    match gate {
        Gate::Cv => format!("ctrl @ sx {args};"),
        Gate::Cvdg => format!("ctrl @ sxdg {args};"),
        Gate::Ccz => format!("ctrl(2) @ z {args};"),
        Gate::Mcx(n) => format!("ctrl({n}) @ x {args};"),
        g => {
            let params = g.params();
            if params.is_empty() {
                format!("{} {args};", g.name())
            } else {
                format!("{}({}) {args};", g.name(), fmt_f64(params[0]))
            }
        }
    }
}

fn fmt_f64(x: f64) -> String {
    // Round-trippable float formatting.
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("nan") {
        s
    } else {
        format!("{s}.0")
    }
}

/// An error from [`from_qasm`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    line: usize,
    message: String,
}

impl ParseQasmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseQasmError {}

impl From<CircuitError> for ParseQasmError {
    fn from(e: CircuitError) -> Self {
        ParseQasmError::new(0, e.to_string())
    }
}

/// Parses the OpenQASM 3 subset produced by [`to_qasm`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on any statement outside the supported subset,
/// malformed operands, or wire indices outside the declared registers.
pub fn from_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut num_qubits = 0usize;
    let mut num_clbits = 0usize;
    let mut insts: Vec<Instruction> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("OPENQASM") || line.starts_with("include") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("qubit[") {
            num_qubits = parse_decl(rest, lineno)?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("bit[") {
            num_clbits = parse_decl(rest, lineno)?;
            continue;
        }
        let (condition, body) = if let Some(rest) = line.strip_prefix("if (") {
            let close = rest
                .find(") {")
                .ok_or_else(|| ParseQasmError::new(lineno, "unterminated if condition"))?;
            let cond = parse_condition(&rest[..close], lineno)?;
            let body = rest[close + 3..]
                .trim()
                .strip_suffix('}')
                .ok_or_else(|| ParseQasmError::new(lineno, "unterminated if body"))?
                .trim();
            (Some(cond), body.to_string())
        } else {
            (None, line.to_string())
        };
        let body = body.trim().trim_end_matches(';').trim();
        if body.is_empty() {
            continue;
        }
        let mut inst = parse_statement(body, lineno)?;
        if let Some(cond) = condition {
            if inst.is_barrier() {
                return Err(ParseQasmError::new(lineno, "barrier cannot be conditioned"));
            }
            inst = inst.with_condition(cond);
        }
        insts.push(inst);
    }

    let mut circuit = Circuit::new(num_qubits, num_clbits);
    for inst in insts {
        circuit
            .try_push(inst)
            .map_err(|e| ParseQasmError::new(0, e.to_string()))?;
    }
    Ok(circuit)
}

/// Largest register a declaration may request. The statevector simulator
/// tops out well below this anyway; the cap keeps a corrupted declaration
/// (`qubit[18446744073709551615] q;`) from propagating a nonsense wire
/// count into downstream passes.
const MAX_REGISTER: usize = 4096;

fn parse_decl(rest: &str, lineno: usize) -> Result<usize, ParseQasmError> {
    let end = rest
        .find(']')
        .ok_or_else(|| ParseQasmError::new(lineno, "missing ] in declaration"))?;
    let size: usize = rest[..end]
        .parse()
        .map_err(|_| ParseQasmError::new(lineno, "bad register size"))?;
    if size > MAX_REGISTER {
        return Err(ParseQasmError::new(
            lineno,
            format!("register size {size} exceeds the supported maximum {MAX_REGISTER}"),
        ));
    }
    Ok(size)
}

fn parse_condition(expr: &str, lineno: usize) -> Result<Condition, ParseQasmError> {
    // Each `&&`-joined clause is either `c[i] == v` (one bit) or a
    // majority-vote threshold `c[a] + c[b] + c[c] >= m` / `<= m-1` over an
    // odd-length group of repeated readings.
    let mut groups: Vec<Vec<Clbit>> = Vec::new();
    let mut value = 0u64;
    let mut any_vote = false;
    for (k, clause) in expr.split("&&").enumerate() {
        if k >= 64 {
            return Err(ParseQasmError::new(
                lineno,
                "condition has more than the 64 supported clauses",
            ));
        }
        let clause = clause.trim();
        let (group, wanted) = if let Some((lhs, rhs)) = clause.split_once("==") {
            let bit = parse_index(lhs.trim(), 'c', lineno)?;
            let v: u64 = rhs
                .trim()
                .parse()
                .map_err(|_| ParseQasmError::new(lineno, "bad condition value"))?;
            (vec![Clbit::new(bit)], v & 1 == 1)
        } else {
            any_vote = true;
            parse_vote_clause(clause, lineno)?
        };
        groups.push(group);
        if wanted {
            value |= 1 << k;
        }
    }
    match (groups.len(), any_vote) {
        (0, _) => Err(ParseQasmError::new(lineno, "empty condition")),
        (_, true) => Ok(Condition::voted(groups, value)),
        (1, false) => Ok(Condition::Bit {
            bit: groups[0][0],
            value: value == 1,
        }),
        (_, false) => Ok(Condition::register(
            groups.iter().map(|g| g[0]).collect(),
            value,
        )),
    }
}

fn parse_vote_clause(clause: &str, lineno: usize) -> Result<(Vec<Clbit>, bool), ParseQasmError> {
    let (wanted, lhs, rhs) = if let Some((lhs, rhs)) = clause.split_once(">=") {
        (true, lhs, rhs)
    } else if let Some((lhs, rhs)) = clause.split_once("<=") {
        (false, lhs, rhs)
    } else {
        return Err(ParseQasmError::new(
            lineno,
            "condition must use ==, >= or <=",
        ));
    };
    let mut group = Vec::new();
    for term in lhs.split('+') {
        group.push(Clbit::new(parse_index(term.trim(), 'c', lineno)?));
    }
    if group.len() % 2 != 1 {
        return Err(ParseQasmError::new(lineno, "vote group must be odd-length"));
    }
    let threshold: usize = rhs
        .trim()
        .parse()
        .map_err(|_| ParseQasmError::new(lineno, "bad vote threshold"))?;
    let majority = group.len() / 2 + 1;
    let expected = if wanted { majority } else { majority - 1 };
    if threshold != expected {
        return Err(ParseQasmError::new(
            lineno,
            format!(
                "vote threshold {threshold} is not the majority of {} bits",
                group.len()
            ),
        ));
    }
    Ok((group, wanted))
}

fn parse_index(token: &str, reg: char, lineno: usize) -> Result<usize, ParseQasmError> {
    let expect = format!("{reg}[");
    let rest = token
        .strip_prefix(&expect)
        .ok_or_else(|| ParseQasmError::new(lineno, format!("expected {expect}...]")))?;
    let end = rest
        .find(']')
        .ok_or_else(|| ParseQasmError::new(lineno, "missing ]"))?;
    rest[..end]
        .parse()
        .map_err(|_| ParseQasmError::new(lineno, "bad wire index"))
}

fn parse_statement(body: &str, lineno: usize) -> Result<Instruction, ParseQasmError> {
    // Measurement assignment: c[i] = measure q[j]
    if let Some((lhs, rhs)) = body.split_once('=') {
        if rhs.trim_start().starts_with("measure") && !lhs.contains("==") {
            let clbit = parse_index(lhs.trim(), 'c', lineno)?;
            let qtoken = rhs.trim().trim_start_matches("measure").trim();
            let qubit = parse_index(qtoken, 'q', lineno)?;
            return Ok(Instruction::measure(Qubit::new(qubit), Clbit::new(clbit)));
        }
    }
    let (head, args) = match body.find(" q[") {
        Some(pos) => (body[..pos].trim(), body[pos..].trim()),
        None => (body, ""),
    };
    let qubits: Vec<Qubit> = if args.is_empty() {
        Vec::new()
    } else {
        args.split(',')
            .map(|tok| parse_index(tok.trim(), 'q', lineno).map(Qubit::new))
            .collect::<Result<_, _>>()?
    };
    if head == "reset" {
        if qubits.len() != 1 {
            return Err(ParseQasmError::new(lineno, "reset takes one qubit"));
        }
        return Ok(Instruction::reset(qubits[0]));
    }
    // The Instruction constructors assert these invariants; pre-check so a
    // garbled file gets a parse error instead of a panic.
    check_distinct(&qubits, lineno)?;
    if head == "barrier" {
        return Ok(Instruction::barrier(qubits));
    }
    let gate = parse_gate(head, lineno)?;
    if gate.num_qubits() != qubits.len() {
        return Err(ParseQasmError::new(
            lineno,
            format!(
                "gate {head} takes {} qubit(s), got {}",
                gate.num_qubits(),
                qubits.len()
            ),
        ));
    }
    Ok(Instruction::gate(gate, qubits))
}

fn check_distinct(qubits: &[Qubit], lineno: usize) -> Result<(), ParseQasmError> {
    for (i, a) in qubits.iter().enumerate() {
        if qubits[..i].contains(a) {
            return Err(ParseQasmError::new(
                lineno,
                format!("duplicate qubit operand q[{}]", a.index()),
            ));
        }
    }
    Ok(())
}

fn parse_gate(head: &str, lineno: usize) -> Result<Gate, ParseQasmError> {
    // ctrl modifiers.
    if let Some(rest) = head.strip_prefix("ctrl") {
        let rest = rest.trim();
        let (count, base) = if let Some(r) = rest.strip_prefix('(') {
            let end = r
                .find(')')
                .ok_or_else(|| ParseQasmError::new(lineno, "missing ) in ctrl"))?;
            let count: usize = r[..end]
                .parse()
                .map_err(|_| ParseQasmError::new(lineno, "bad ctrl count"))?;
            if count == 0 {
                return Err(ParseQasmError::new(lineno, "ctrl count must be at least 1"));
            }
            (count, r[end + 1..].trim())
        } else {
            (1, rest)
        };
        let base = base
            .strip_prefix('@')
            .ok_or_else(|| ParseQasmError::new(lineno, "expected @ after ctrl"))?
            .trim();
        return match (count, base) {
            (1, "sx") => Ok(Gate::Cv),
            (1, "sxdg") => Ok(Gate::Cvdg),
            (2, "z") => Ok(Gate::Ccz),
            (n, "x") => Ok(match n {
                1 => Gate::Cx,
                2 => Gate::Ccx,
                n => Gate::Mcx(n),
            }),
            _ => Err(ParseQasmError::new(
                lineno,
                format!("unsupported controlled gate: {head}"),
            )),
        };
    }
    // Parameterised gates: name(angle)
    if let Some(open) = head.find('(') {
        let name = &head[..open];
        // Search after the `(` so a stray earlier `)` cannot invert the
        // slice range and panic on garbled input.
        let close = head[open + 1..]
            .find(')')
            .map(|i| open + 1 + i)
            .ok_or_else(|| ParseQasmError::new(lineno, "missing ) in parameter"))?;
        let angle: f64 = head[open + 1..close]
            .parse()
            .map_err(|_| ParseQasmError::new(lineno, "bad angle"))?;
        if !angle.is_finite() {
            return Err(ParseQasmError::new(lineno, "angle must be finite"));
        }
        return match name {
            "p" => Ok(Gate::P(angle)),
            "rx" => Ok(Gate::Rx(angle)),
            "ry" => Ok(Gate::Ry(angle)),
            "rz" => Ok(Gate::Rz(angle)),
            "cp" => Ok(Gate::Cp(angle)),
            _ => Err(ParseQasmError::new(
                lineno,
                format!("unsupported parameterised gate: {name}"),
            )),
        };
    }
    match head {
        "id" => Ok(Gate::I),
        "h" => Ok(Gate::H),
        "x" => Ok(Gate::X),
        "y" => Ok(Gate::Y),
        "z" => Ok(Gate::Z),
        "s" => Ok(Gate::S),
        "sdg" => Ok(Gate::Sdg),
        "t" => Ok(Gate::T),
        "tdg" => Ok(Gate::Tdg),
        "sx" => Ok(Gate::V),
        "sxdg" => Ok(Gate::Vdg),
        "cx" => Ok(Gate::Cx),
        "cy" => Ok(Gate::Cy),
        "cz" => Ok(Gate::Cz),
        "swap" => Ok(Gate::Swap),
        "ccx" => Ok(Gate::Ccx),
        other => Err(ParseQasmError::new(
            lineno,
            format!("unsupported gate: {other}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn export_header_and_gates() {
        let mut circ = Circuit::new(2, 1);
        circ.h(q(0)).cx(q(0), q(1)).measure(q(1), c(0));
        let text = to_qasm(&circ);
        assert!(text.starts_with("OPENQASM 3.0;"));
        assert!(text.contains("qubit[2] q;"));
        assert!(text.contains("bit[1] c;"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0], q[1];"));
        assert!(text.contains("c[0] = measure q[1];"));
    }

    #[test]
    fn export_cv_uses_ctrl_modifier() {
        let mut circ = Circuit::new(2, 0);
        circ.cv(q(0), q(1)).cvdg(q(0), q(1));
        let text = to_qasm(&circ);
        assert!(text.contains("ctrl @ sx q[0], q[1];"));
        assert!(text.contains("ctrl @ sxdg q[0], q[1];"));
    }

    #[test]
    fn export_condition() {
        let mut circ = Circuit::new(1, 2);
        circ.x_if(q(0), c(1));
        let text = to_qasm(&circ);
        assert!(text.contains("if (c[1] == 1) { x q[0]; }"));
    }

    #[test]
    fn export_register_condition() {
        let mut circ = Circuit::new(1, 2);
        circ.gate_if(
            Gate::X,
            &[q(0)],
            Condition::register(vec![c(0), c(1)], 0b01),
        );
        let text = to_qasm(&circ);
        assert!(text.contains("if (c[0] == 1 && c[1] == 0) { x q[0]; }"));
    }

    #[test]
    fn export_voted_condition_as_threshold_sums() {
        let mut circ = Circuit::new(1, 4);
        circ.gate_if(
            Gate::X,
            &[q(0)],
            Condition::voted(vec![vec![c(0), c(1), c(2)], vec![c(3)]], 0b01),
        );
        let text = to_qasm(&circ);
        assert!(
            text.contains("if (c[0] + c[1] + c[2] >= 2 && c[3] <= 0) { x q[0]; }"),
            "{text}"
        );
    }

    #[test]
    fn round_trip_voted_conditions() {
        let mut circ = Circuit::new(2, 7);
        // Majority-1 over three readings.
        circ.gate_if(
            Gate::X,
            &[q(0)],
            Condition::voted(vec![vec![c(0), c(2), c(4)]], 1),
        );
        // Majority-0 over five readings, mixed with a singleton group.
        circ.gate_if(
            Gate::H,
            &[q(1)],
            Condition::voted(vec![vec![c(1), c(3), c(4), c(5), c(6)], vec![c(0)]], 0b10),
        );
        let parsed = from_qasm(&to_qasm(&circ)).unwrap();
        assert_eq!(parsed.instructions(), circ.instructions());
        // Emitted text is a fixed point of emit -> parse -> emit.
        assert_eq!(to_qasm(&parsed), to_qasm(&circ));
    }

    #[test]
    fn parse_rejects_non_majority_vote_threshold() {
        let text = "qubit[1] q;\nbit[3] c;\nif (c[0] + c[1] + c[2] >= 3) { x q[0]; }";
        let err = from_qasm(text).unwrap_err();
        assert!(err.to_string().contains("not the majority"), "{err}");
    }

    #[test]
    fn round_trip_simple_circuit() {
        let mut circ = Circuit::new(3, 2);
        circ.h(q(0))
            .t(q(1))
            .cx(q(0), q(2))
            .ccx(q(0), q(1), q(2))
            .measure(q(0), c(0))
            .reset(q(0))
            .x_if(q(1), c(0))
            .measure(q(1), c(1));
        let parsed = from_qasm(&to_qasm(&circ)).unwrap();
        assert_eq!(parsed.num_qubits(), 3);
        assert_eq!(parsed.num_clbits(), 2);
        assert_eq!(parsed.instructions(), circ.instructions());
    }

    #[test]
    fn round_trip_cv_and_mcx() {
        let mut circ = Circuit::new(5, 0);
        circ.cv(q(0), q(1))
            .cvdg(q(2), q(3))
            .ccz(q(0), q(1), q(2))
            .mcx(&[q(0), q(1), q(2), q(3)], q(4));
        let parsed = from_qasm(&to_qasm(&circ)).unwrap();
        assert_eq!(parsed.instructions(), circ.instructions());
    }

    #[test]
    fn round_trip_parameterised_gates() {
        let mut circ = Circuit::new(2, 0);
        circ.p(0.5, q(0))
            .rx(1.25, q(0))
            .ry(-0.75, q(1))
            .rz(3.0, q(1))
            .cp(0.125, q(0), q(1));
        let parsed = from_qasm(&to_qasm(&circ)).unwrap();
        assert_eq!(parsed.instructions(), circ.instructions());
    }

    #[test]
    fn round_trip_register_condition() {
        let mut circ = Circuit::new(1, 3);
        circ.gate_if(
            Gate::V,
            &[q(0)],
            Condition::register(vec![c(0), c(2)], 0b10),
        );
        let parsed = from_qasm(&to_qasm(&circ)).unwrap();
        assert_eq!(parsed.instructions(), circ.instructions());
    }

    #[test]
    fn round_trip_bit_zero_condition() {
        // An on-zero condition must emit `== 0` and survive the round trip
        // as `Bit { value: false }`, not collapse to the on-one form.
        let mut circ = Circuit::new(1, 2);
        circ.gate_if(Gate::X, &[q(0)], Condition::bit_zero(c(1)));
        let text = to_qasm(&circ);
        assert!(text.contains("if (c[1] == 0) { x q[0]; }"), "{text}");
        let parsed = from_qasm(&text).unwrap();
        assert_eq!(parsed.instructions(), circ.instructions());
        assert_eq!(to_qasm(&parsed), text);
    }

    #[test]
    fn emit_parse_emit_is_idempotent_for_condition_forms() {
        // Every condition shape the IR can express: bit == 1, bit == 0,
        // multi-bit register values with mixed 0/1 clauses (including
        // non-contiguous, out-of-order bit lists), a conditioned reset, and
        // a single-bit register (which re-parses as the equivalent Bit
        // condition — the emitted text is identical either way).
        let mut circ = Circuit::new(2, 4);
        circ.measure(q(0), c(0)).measure(q(1), c(1));
        circ.gate_if(Gate::X, &[q(0)], Condition::bit(c(0)));
        circ.gate_if(Gate::H, &[q(1)], Condition::bit_zero(c(1)));
        circ.gate_if(
            Gate::Z,
            &[q(0)],
            Condition::register(vec![c(0), c(1), c(3)], 0b101),
        );
        circ.gate_if(Gate::V, &[q(1)], Condition::register(vec![c(2)], 0b1));
        circ.gate_if(
            Gate::Y,
            &[q(0)],
            Condition::register(vec![c(3), c(0)], 0b01),
        );
        circ.push(
            Instruction::reset(q(0)).with_condition(Condition::register(vec![c(1), c(2)], 0b10)),
        );
        let once = to_qasm(&circ);
        let parsed = from_qasm(&once).unwrap();
        let twice = to_qasm(&parsed);
        assert_eq!(once, twice, "emit -> parse -> emit must be a fixed point");
        // The conditions must also evaluate identically on every possible
        // classical-register state, so the normalization is semantics-free.
        assert_eq!(circ.instructions().len(), parsed.instructions().len());
        for (a, b) in circ.instructions().iter().zip(parsed.instructions()) {
            for value in 0u8..16 {
                let bits: Vec<bool> = (0..4).map(|k| value >> k & 1 == 1).collect();
                let fire_a = a.condition().is_none_or(|cond| cond.evaluate(&bits));
                let fire_b = b.condition().is_none_or(|cond| cond.evaluate(&bits));
                assert_eq!(fire_a, fire_b, "condition mismatch on bits {bits:?}");
            }
        }
    }

    #[test]
    fn parser_ignores_comments_and_blank_lines() {
        let text = "OPENQASM 3.0;\n// a comment\n\nqubit[1] q;\nh q[0]; // trailing\n";
        let parsed = from_qasm(text).unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn parser_rejects_unknown_gate() {
        let text = "qubit[1] q;\nfrobnicate q[0];\n";
        let err = from_qasm(text).unwrap_err();
        assert!(err.to_string().contains("unsupported gate"));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn parser_rejects_out_of_range_wire() {
        let text = "qubit[1] q;\nh q[5];\n";
        assert!(from_qasm(text).is_err());
    }

    #[test]
    fn barrier_round_trips() {
        let mut circ = Circuit::new(2, 0);
        circ.barrier(&[q(0), q(1)]);
        let parsed = from_qasm(&to_qasm(&circ)).unwrap();
        assert_eq!(parsed.instructions(), circ.instructions());
    }
}
