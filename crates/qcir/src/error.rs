//! Error types for circuit construction and transformation.

use std::error::Error;
use std::fmt;

/// Errors raised while building or transforming a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A qubit operand exceeded the circuit's wire count.
    QubitOutOfRange {
        /// The offending global qubit index.
        qubit: usize,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// A classical-bit operand exceeded the circuit's bit count.
    ClbitOutOfRange {
        /// The offending global classical-bit index.
        clbit: usize,
        /// The circuit's classical-bit count.
        num_clbits: usize,
    },
    /// An operation without an inverse (measure, reset, conditioned gate)
    /// was found where a unitary was required.
    NotUnitary {
        /// Rendering of the offending instruction.
        what: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::ClbitOutOfRange { clbit, num_clbits } => {
                write!(
                    f,
                    "classical bit {clbit} out of range for {num_clbits}-bit circuit"
                )
            }
            CircuitError::NotUnitary { what } => {
                write!(f, "operation has no unitary representation: {what}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 7,
            num_qubits: 3,
        };
        assert_eq!(e.to_string(), "qubit 7 out of range for 3-qubit circuit");
        let e = CircuitError::ClbitOutOfRange {
            clbit: 2,
            num_clbits: 1,
        };
        assert!(e.to_string().contains("classical bit 2"));
        let e = CircuitError::NotUnitary {
            what: "measure q0 -> c0".into(),
        };
        assert!(e.to_string().contains("measure"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
