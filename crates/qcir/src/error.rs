//! Error types for circuit construction and transformation.

use std::error::Error;
use std::fmt;

/// Errors raised while building or transforming a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A qubit operand exceeded the circuit's wire count.
    QubitOutOfRange {
        /// The offending global qubit index.
        qubit: usize,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// A classical-bit operand exceeded the circuit's bit count.
    ClbitOutOfRange {
        /// The offending global classical-bit index.
        clbit: usize,
        /// The circuit's classical-bit count.
        num_clbits: usize,
    },
    /// An operation without an inverse (measure, reset, conditioned gate)
    /// was found where a unitary was required.
    NotUnitary {
        /// Rendering of the offending instruction.
        what: String,
    },
    /// A classical condition reads no bits at all (empty register or an
    /// empty vote group).
    EmptyCondition {
        /// Index of the offending instruction.
        at: usize,
    },
    /// A voted condition carries a vote group with an even ballot count,
    /// which has no majority.
    BadVoteGroup {
        /// Index of the offending instruction.
        at: usize,
        /// The offending group's ballot count.
        len: usize,
    },
    /// A condition reads more bits than its 64-bit comparison value can
    /// represent.
    ConditionTooWide {
        /// Index of the offending instruction.
        at: usize,
        /// Number of bits (or vote groups) the condition compares.
        width: usize,
    },
    /// A condition's comparison value needs more bits than the condition
    /// reads, so it can never hold.
    ConditionOverflow {
        /// Index of the offending instruction.
        at: usize,
        /// The unreachable comparison value.
        value: u64,
        /// Number of bits (or vote groups) the condition compares.
        width: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::ClbitOutOfRange { clbit, num_clbits } => {
                write!(
                    f,
                    "classical bit {clbit} out of range for {num_clbits}-bit circuit"
                )
            }
            CircuitError::NotUnitary { what } => {
                write!(f, "operation has no unitary representation: {what}")
            }
            CircuitError::EmptyCondition { at } => {
                write!(f, "instruction {at}: condition reads no classical bits")
            }
            CircuitError::BadVoteGroup { at, len } => {
                write!(
                    f,
                    "instruction {at}: vote group with {len} ballots has no majority (must be odd)"
                )
            }
            CircuitError::ConditionTooWide { at, width } => {
                write!(
                    f,
                    "instruction {at}: condition compares {width} bits, more than the 64 supported"
                )
            }
            CircuitError::ConditionOverflow { at, value, width } => {
                write!(
                    f,
                    "instruction {at}: condition value {value} does not fit in {width} bits"
                )
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 7,
            num_qubits: 3,
        };
        assert_eq!(e.to_string(), "qubit 7 out of range for 3-qubit circuit");
        let e = CircuitError::ClbitOutOfRange {
            clbit: 2,
            num_clbits: 1,
        };
        assert!(e.to_string().contains("classical bit 2"));
        let e = CircuitError::NotUnitary {
            what: "measure q0 -> c0".into(),
        };
        assert!(e.to_string().contains("measure"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
