//! Commutation analysis between instructions.
//!
//! The dynamic-circuit transformation replays gates out of their original
//! order; doing so is only sound when the hoisted gate commutes with every
//! deferred gate it passes. This module decides commutativity exactly, by
//! comparing the two operator products on the union of the instructions'
//! qubit supports.

use crate::gate::Gate;
use crate::instruction::{Instruction, OpKind};
use crate::register::Qubit;
/// Tolerance for the matrix commutation test.
const COMMUTE_TOL: f64 = 1e-9;

/// Returns `true` when the two gates, applied to the given operand lists,
/// commute as operators: `B·A == A·B`.
///
/// Disjoint supports commute trivially; overlapping supports are decided by
/// an exact matrix test on the (small) union of the supports.
///
/// # Panics
///
/// Panics if an operand list length does not match its gate's arity.
///
/// # Examples
///
/// ```
/// use qcir::{commute::gates_commute, Gate, Qubit};
/// let q = |i| Qubit::new(i);
/// // Two CNOTs sharing only their control commute.
/// assert!(gates_commute(&Gate::Cx, &[q(0), q(1)], &Gate::Cx, &[q(0), q(2)]));
/// // CX and a Hadamard on the control do not.
/// assert!(!gates_commute(&Gate::Cx, &[q(0), q(1)], &Gate::H, &[q(0)]));
/// ```
#[must_use]
pub fn gates_commute(a: &Gate, a_qubits: &[Qubit], b: &Gate, b_qubits: &[Qubit]) -> bool {
    assert_eq!(
        a_qubits.len(),
        a.num_qubits(),
        "operand count mismatch for {a}"
    );
    assert_eq!(
        b_qubits.len(),
        b.num_qubits(),
        "operand count mismatch for {b}"
    );
    if a_qubits.iter().all(|q| !b_qubits.contains(q)) {
        return true;
    }
    // Union support, in deterministic order.
    let mut support: Vec<Qubit> = a_qubits.to_vec();
    for q in b_qubits {
        if !support.contains(q) {
            support.push(*q);
        }
    }
    let n = support.len();
    let pos = |qs: &[Qubit]| -> Vec<usize> {
        qs.iter()
            .map(|q| support.iter().position(|s| s == q).expect("in support"))
            .collect()
    };
    let ma = a.matrix().embed(&pos(a_qubits), n);
    let mb = b.matrix().embed(&pos(b_qubits), n);
    ma.mul(&mb).approx_eq(&mb.mul(&ma), COMMUTE_TOL)
}

/// Returns `true` when two instructions can safely exchange order.
///
/// Gate/gate pairs defer to [`gates_commute`]. Any pair involving a
/// measurement, reset, barrier or classically conditioned operation is
/// treated conservatively: it commutes only when the instructions share no
/// qubit wire and no classical bit.
#[must_use]
pub fn instructions_commute(a: &Instruction, b: &Instruction) -> bool {
    let share_qubit = a.qubits().iter().any(|q| b.qubits().contains(q));
    let a_cl: Vec<_> = a
        .clbits_written()
        .iter()
        .copied()
        .chain(a.clbits_read())
        .collect();
    let b_cl: Vec<_> = b
        .clbits_written()
        .iter()
        .copied()
        .chain(b.clbits_read())
        .collect();
    let share_clbit = a_cl.iter().any(|c| b_cl.contains(c));

    match (a.kind(), b.kind()) {
        (OpKind::Gate(ga), OpKind::Gate(gb)) if !a.is_conditioned() && !b.is_conditioned() => {
            gates_commute(ga, a.qubits(), gb, b.qubits())
        }
        _ => !share_qubit && !share_clbit,
    }
}

/// The CV-family on a common target: controlled powers of X all commute with
/// each other. Exposed as a fast path for the transformation's scheduler and
/// checked against the matrix test in this module's tests.
#[must_use]
pub fn is_x_power_controlled(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::Cx | Gate::Cv | Gate::Cvdg | Gate::Ccx | Gate::Mcx(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Condition;
    use crate::register::Clbit;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn disjoint_supports_commute() {
        assert!(gates_commute(&Gate::H, &[q(0)], &Gate::X, &[q(1)]));
    }

    #[test]
    fn same_qubit_x_and_z_anticommute() {
        assert!(!gates_commute(&Gate::X, &[q(0)], &Gate::Z, &[q(0)]));
    }

    #[test]
    fn x_and_v_on_same_qubit_commute() {
        // V is a function of X.
        assert!(gates_commute(&Gate::X, &[q(0)], &Gate::V, &[q(0)]));
    }

    #[test]
    fn cnots_sharing_control_commute() {
        assert!(gates_commute(
            &Gate::Cx,
            &[q(0), q(1)],
            &Gate::Cx,
            &[q(0), q(2)]
        ));
    }

    #[test]
    fn cnots_sharing_target_commute() {
        assert!(gates_commute(
            &Gate::Cx,
            &[q(0), q(2)],
            &Gate::Cx,
            &[q(1), q(2)]
        ));
    }

    #[test]
    fn cnot_chain_does_not_commute() {
        // CX(0->1) and CX(1->2) share qubit 1 as target/control.
        assert!(!gates_commute(
            &Gate::Cx,
            &[q(0), q(1)],
            &Gate::Cx,
            &[q(1), q(2)]
        ));
    }

    #[test]
    fn cx_and_t_on_target_do_not_commute() {
        // The non-commutation the paper highlights in Section IV-B.
        assert!(!gates_commute(&Gate::Cx, &[q(0), q(1)], &Gate::T, &[q(1)]));
    }

    #[test]
    fn cx_and_t_on_control_commute() {
        assert!(gates_commute(&Gate::Cx, &[q(0), q(1)], &Gate::T, &[q(0)]));
    }

    #[test]
    fn cv_family_on_common_target_commutes() {
        // CV(a,t), CV(b,t), CX(a,t), CCX(a,b,t) pairwise commute: the
        // property Eqn (7) of the paper relies on to reorder the oracle.
        let pairs: Vec<(Gate, Vec<Qubit>)> = vec![
            (Gate::Cv, vec![q(0), q(3)]),
            (Gate::Cvdg, vec![q(1), q(3)]),
            (Gate::Cx, vec![q(0), q(3)]),
            (Gate::Ccx, vec![q(0), q(1), q(3)]),
            (Gate::Mcx(3), vec![q(0), q(1), q(2), q(3)]),
        ];
        for (ga, qa) in &pairs {
            assert!(is_x_power_controlled(ga));
            for (gb, qb) in &pairs {
                assert!(
                    gates_commute(ga, qa, gb, qb),
                    "{ga} and {gb} should commute on a common target"
                );
            }
        }
    }

    #[test]
    fn cv_and_hadamard_on_target_do_not_commute() {
        assert!(!gates_commute(&Gate::Cv, &[q(0), q(1)], &Gate::H, &[q(1)]));
    }

    #[test]
    fn swap_and_cx_overlap() {
        assert!(!gates_commute(
            &Gate::Swap,
            &[q(0), q(1)],
            &Gate::Cx,
            &[q(0), q(2)]
        ));
    }

    #[test]
    fn instruction_gate_pairs_use_matrix_test() {
        let a = Instruction::gate(Gate::Cx, vec![q(0), q(1)]);
        let b = Instruction::gate(Gate::Cx, vec![q(0), q(2)]);
        assert!(instructions_commute(&a, &b));
        let c = Instruction::gate(Gate::H, vec![q(0)]);
        assert!(!instructions_commute(&a, &c));
    }

    #[test]
    fn measurement_blocks_same_qubit() {
        let m = Instruction::measure(q(0), Clbit::new(0));
        let g = Instruction::gate(Gate::H, vec![q(0)]);
        assert!(!instructions_commute(&m, &g));
        let far = Instruction::gate(Gate::H, vec![q(1)]);
        assert!(instructions_commute(&m, &far));
    }

    #[test]
    fn measurement_blocks_condition_on_same_bit() {
        let m = Instruction::measure(q(0), Clbit::new(0));
        let g =
            Instruction::gate(Gate::X, vec![q(1)]).with_condition(Condition::bit(Clbit::new(0)));
        assert!(!instructions_commute(&m, &g));
    }

    #[test]
    fn conditioned_gates_are_conservative_even_when_matrices_commute() {
        let a =
            Instruction::gate(Gate::X, vec![q(0)]).with_condition(Condition::bit(Clbit::new(0)));
        let b = Instruction::gate(Gate::V, vec![q(0)]);
        // X and V commute as matrices, but the conditioned X is treated
        // conservatively because its action depends on the classical state.
        assert!(!instructions_commute(&a, &b));
    }

    #[test]
    #[should_panic(expected = "operand count mismatch")]
    fn arity_mismatch_panics() {
        let _ = gates_commute(&Gate::Cx, &[q(0)], &Gate::H, &[q(0)]);
    }
}
