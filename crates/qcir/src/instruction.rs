//! Circuit instructions: gates, measurement, reset, barriers and the
//! classical conditions that make a circuit *dynamic*.

use crate::gate::Gate;
use crate::register::{Clbit, Qubit};
use std::fmt;

/// A classical predicate attached to an instruction.
///
/// An instruction with a condition executes only when the predicate holds on
/// the classical register state at that point of the shot. This is the
/// "classically controlled gate operation" primitive of dynamic quantum
/// circuits.
///
/// # Examples
///
/// ```
/// use qcir::{Clbit, Condition};
/// let c = Condition::bit(Clbit::new(0));
/// assert!(c.evaluate(&[true]));
/// assert!(!c.evaluate(&[false]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// True when the given classical bit has the given value.
    Bit {
        /// The classical bit inspected.
        bit: Clbit,
        /// The value it must hold for the instruction to run.
        value: bool,
    },
    /// True when the named bits, read LSB-first, encode `value`.
    Register {
        /// The classical bits inspected, least-significant first.
        bits: Vec<Clbit>,
        /// The unsigned value the bits must encode.
        value: u64,
    },
    /// True when the majority-voted bit groups, read LSB-first, encode
    /// `value`.
    ///
    /// Each group is an odd-length list of classical bits holding repeated
    /// readings of the same logical measurement; the group's effective bit is
    /// the majority of its members. This is the feed-forward side of
    /// measurement-repetition mitigation: a classically controlled gate fires
    /// on the voted bit rather than a single (possibly flipped) reading.
    Voted {
        /// Bit groups, least-significant first; each group odd-length.
        groups: Vec<Vec<Clbit>>,
        /// The unsigned value the voted group bits must encode.
        value: u64,
    },
}

impl Condition {
    /// Condition that is true when `bit == 1`.
    #[must_use]
    pub fn bit(bit: Clbit) -> Self {
        Condition::Bit { bit, value: true }
    }

    /// Condition that is true when `bit == 0`.
    #[must_use]
    pub fn bit_zero(bit: Clbit) -> Self {
        Condition::Bit { bit, value: false }
    }

    /// Condition on a whole register value (bits listed LSB-first).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or `value` does not fit in `bits.len()` bits.
    #[must_use]
    pub fn register(bits: Vec<Clbit>, value: u64) -> Self {
        assert!(
            !bits.is_empty(),
            "register condition needs at least one bit"
        );
        assert!(
            bits.len() >= 64 || value < (1u64 << bits.len()),
            "value {value} does not fit in {} bits",
            bits.len()
        );
        Condition::Register { bits, value }
    }

    /// Condition on majority-voted bit groups (groups listed LSB-first).
    ///
    /// Degenerate all-singleton group lists normalize to the equivalent
    /// [`Condition::Bit`] / [`Condition::Register`], so a vote over
    /// unrepeated measurements round-trips through QASM unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty, any group is empty or even-length, or
    /// `value` does not fit in `groups.len()` bits.
    #[must_use]
    pub fn voted(groups: Vec<Vec<Clbit>>, value: u64) -> Self {
        assert!(
            !groups.is_empty(),
            "voted condition needs at least one group"
        );
        for g in &groups {
            assert!(
                g.len() % 2 == 1,
                "vote group must have odd nonzero length, got {}",
                g.len()
            );
        }
        assert!(
            groups.len() >= 64 || value < (1u64 << groups.len()),
            "value {value} does not fit in {} groups",
            groups.len()
        );
        if groups.iter().all(|g| g.len() == 1) {
            let bits: Vec<Clbit> = groups.iter().map(|g| g[0]).collect();
            return if bits.len() == 1 {
                Condition::Bit {
                    bit: bits[0],
                    value: value == 1,
                }
            } else {
                Condition::Register { bits, value }
            };
        }
        Condition::Voted { groups, value }
    }

    /// The classical bits this condition reads.
    #[must_use]
    pub fn bits(&self) -> Vec<Clbit> {
        match self {
            Condition::Bit { bit, .. } => vec![*bit],
            Condition::Register { bits, .. } => bits.clone(),
            Condition::Voted { groups, .. } => groups.iter().flatten().copied().collect(),
        }
    }

    /// Evaluates the condition against a classical bit store indexed by
    /// global clbit index.
    ///
    /// # Panics
    ///
    /// Panics if a referenced bit index is out of range of `classical`.
    #[must_use]
    pub fn evaluate(&self, classical: &[bool]) -> bool {
        match self {
            Condition::Bit { bit, value } => classical[bit.index()] == *value,
            Condition::Register { bits, value } => {
                let mut acc = 0u64;
                for (k, b) in bits.iter().enumerate() {
                    if classical[b.index()] {
                        acc |= 1 << k;
                    }
                }
                acc == *value
            }
            Condition::Voted { groups, value } => {
                let mut acc = 0u64;
                for (k, group) in groups.iter().enumerate() {
                    let ones = group.iter().filter(|b| classical[b.index()]).count();
                    if 2 * ones > group.len() {
                        acc |= 1 << k;
                    }
                }
                acc == *value
            }
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Bit { bit, value } => write!(f, "if ({bit} == {})", u8::from(*value)),
            Condition::Register { bits, value } => {
                write!(f, "if ([")?;
                for (i, b) in bits.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, "] == {value})")
            }
            Condition::Voted { groups, value } => {
                write!(f, "if (maj[")?;
                for (i, g) in groups.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    for (j, b) in g.iter().enumerate() {
                        if j > 0 {
                            write!(f, "+")?;
                        }
                        write!(f, "{b}")?;
                    }
                }
                write!(f, "] == {value})")
            }
        }
    }
}

/// The operation an [`Instruction`] performs.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// A unitary gate.
    Gate(Gate),
    /// Projective measurement of one qubit into one classical bit.
    Measure,
    /// Active reset of one qubit to `|0>` (measure + classically
    /// controlled X, exposed as a single primitive as on IBM hardware).
    Reset,
    /// A scheduling barrier; occupies no depth and performs no operation.
    Barrier,
}

impl OpKind {
    /// Mnemonic used in diagnostics and QASM export.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            OpKind::Gate(g) => g.name(),
            OpKind::Measure => "measure",
            OpKind::Reset => "reset",
            OpKind::Barrier => "barrier",
        }
    }

    /// `true` for non-unitary operations (measure/reset).
    #[must_use]
    pub fn is_nonunitary(&self) -> bool {
        matches!(self, OpKind::Measure | OpKind::Reset)
    }
}

/// One operation applied to specific qubits (and classical bits), possibly
/// under a classical [`Condition`].
///
/// Construct instructions through the [`Circuit`](crate::Circuit) builder
/// methods in normal use; the explicit constructors here are the escape hatch
/// for transformation passes.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    kind: OpKind,
    qubits: Vec<Qubit>,
    clbits: Vec<Clbit>,
    condition: Option<Condition>,
}

impl Instruction {
    /// Creates a gate instruction.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the gate arity or operands
    /// repeat.
    #[must_use]
    pub fn gate(gate: Gate, qubits: Vec<Qubit>) -> Self {
        assert_eq!(
            qubits.len(),
            gate.num_qubits(),
            "gate {gate} expects {} qubits, got {}",
            gate.num_qubits(),
            qubits.len()
        );
        assert_distinct(&qubits);
        Self {
            kind: OpKind::Gate(gate),
            qubits,
            clbits: Vec::new(),
            condition: None,
        }
    }

    /// Creates a measurement of `qubit` into `clbit`.
    #[must_use]
    pub fn measure(qubit: Qubit, clbit: Clbit) -> Self {
        Self {
            kind: OpKind::Measure,
            qubits: vec![qubit],
            clbits: vec![clbit],
            condition: None,
        }
    }

    /// Creates an active reset of `qubit`.
    #[must_use]
    pub fn reset(qubit: Qubit) -> Self {
        Self {
            kind: OpKind::Reset,
            qubits: vec![qubit],
            clbits: Vec::new(),
            condition: None,
        }
    }

    /// Creates a barrier across `qubits`.
    #[must_use]
    pub fn barrier(qubits: Vec<Qubit>) -> Self {
        assert_distinct(&qubits);
        Self {
            kind: OpKind::Barrier,
            qubits,
            clbits: Vec::new(),
            condition: None,
        }
    }

    /// Attaches a classical condition, consuming and returning the
    /// instruction (builder style).
    ///
    /// # Panics
    ///
    /// Panics when attaching a condition to a barrier, which has no effect to
    /// condition.
    #[must_use]
    pub fn with_condition(mut self, condition: Condition) -> Self {
        assert!(
            !matches!(self.kind, OpKind::Barrier),
            "barriers cannot be conditioned"
        );
        self.condition = Some(condition);
        self
    }

    /// The operation performed.
    #[must_use]
    pub fn kind(&self) -> &OpKind {
        &self.kind
    }

    /// The gate, when the instruction is a gate.
    #[must_use]
    pub fn as_gate(&self) -> Option<&Gate> {
        match &self.kind {
            OpKind::Gate(g) => Some(g),
            _ => None,
        }
    }

    /// Qubit operands in gate-operand order.
    #[must_use]
    pub fn qubits(&self) -> &[Qubit] {
        &self.qubits
    }

    /// Classical-bit operands (the target of a measurement).
    #[must_use]
    pub fn clbits(&self) -> &[Clbit] {
        &self.clbits
    }

    /// The classical condition, if any.
    #[must_use]
    pub fn condition(&self) -> Option<&Condition> {
        self.condition.as_ref()
    }

    /// `true` when a classical condition is attached.
    #[must_use]
    pub fn is_conditioned(&self) -> bool {
        self.condition.is_some()
    }

    /// All classical bits the instruction *reads* (its condition bits).
    #[must_use]
    pub fn clbits_read(&self) -> Vec<Clbit> {
        self.condition
            .as_ref()
            .map(Condition::bits)
            .unwrap_or_default()
    }

    /// All classical bits the instruction *writes* (measurement targets).
    #[must_use]
    pub fn clbits_written(&self) -> &[Clbit] {
        match self.kind {
            OpKind::Measure => &self.clbits,
            _ => &[],
        }
    }

    /// `true` when the instruction is a barrier.
    #[must_use]
    pub fn is_barrier(&self) -> bool {
        matches!(self.kind, OpKind::Barrier)
    }

    /// Rewrites qubit and classical-bit operands through the given maps.
    ///
    /// Used when composing circuits. `qubit_map[old_index]` gives the new
    /// qubit, and likewise for `clbit_map`.
    ///
    /// # Panics
    ///
    /// Panics if an operand index is outside the corresponding map.
    #[must_use]
    pub fn remapped(&self, qubit_map: &[Qubit], clbit_map: &[Clbit]) -> Self {
        let mut out = self.clone();
        out.qubits = self.qubits.iter().map(|q| qubit_map[q.index()]).collect();
        out.clbits = self.clbits.iter().map(|c| clbit_map[c.index()]).collect();
        out.condition = self.condition.as_ref().map(|cond| match cond {
            Condition::Bit { bit, value } => Condition::Bit {
                bit: clbit_map[bit.index()],
                value: *value,
            },
            Condition::Register { bits, value } => Condition::Register {
                bits: bits.iter().map(|b| clbit_map[b.index()]).collect(),
                value: *value,
            },
            Condition::Voted { groups, value } => Condition::Voted {
                groups: groups
                    .iter()
                    .map(|g| g.iter().map(|b| clbit_map[b.index()]).collect())
                    .collect(),
                value: *value,
            },
        });
        out
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(c) = &self.condition {
            write!(f, "{c} ")?;
        }
        write!(f, "{}", self.kind.name())?;
        if let OpKind::Gate(g) = &self.kind {
            let p = g.params();
            if !p.is_empty() {
                write!(f, "({:.6})", p[0])?;
            }
        }
        for q in &self.qubits {
            write!(f, " {q}")?;
        }
        for c in &self.clbits {
            write!(f, " -> {c}")?;
        }
        Ok(())
    }
}

fn assert_distinct(qubits: &[Qubit]) {
    for (i, q) in qubits.iter().enumerate() {
        assert!(
            !qubits[..i].contains(q),
            "duplicate qubit operand {q} in instruction"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_condition_evaluates() {
        let c = Condition::bit(Clbit::new(1));
        assert!(c.evaluate(&[false, true]));
        assert!(!c.evaluate(&[false, false]));
        let z = Condition::bit_zero(Clbit::new(0));
        assert!(z.evaluate(&[false]));
    }

    #[test]
    fn register_condition_evaluates_lsb_first() {
        let c = Condition::register(vec![Clbit::new(0), Clbit::new(1)], 0b10);
        assert!(c.evaluate(&[false, true]));
        assert!(!c.evaluate(&[true, false]));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn register_condition_rejects_oversized_value() {
        let _ = Condition::register(vec![Clbit::new(0)], 2);
    }

    #[test]
    fn voted_condition_takes_group_majority() {
        let c = Condition::voted(
            vec![
                vec![Clbit::new(0), Clbit::new(1), Clbit::new(2)],
                vec![Clbit::new(3)],
            ],
            0b01,
        );
        // Two of three readings say 1 -> group votes 1; second group reads 0.
        assert!(c.evaluate(&[true, false, true, false]));
        // One of three readings says 1 -> group votes 0.
        assert!(!c.evaluate(&[true, false, false, false]));
        // Second group flips to 1 -> encoded value becomes 0b11, not 0b01.
        assert!(!c.evaluate(&[true, true, false, true]));
        assert_eq!(
            c.bits(),
            vec![Clbit::new(0), Clbit::new(1), Clbit::new(2), Clbit::new(3)]
        );
    }

    #[test]
    fn voted_condition_normalizes_singleton_groups() {
        let one = Condition::voted(vec![vec![Clbit::new(4)]], 1);
        assert_eq!(one, Condition::bit(Clbit::new(4)));
        let two = Condition::voted(vec![vec![Clbit::new(0)], vec![Clbit::new(2)]], 0b10);
        assert_eq!(
            two,
            Condition::register(vec![Clbit::new(0), Clbit::new(2)], 0b10)
        );
    }

    #[test]
    #[should_panic(expected = "odd nonzero length")]
    fn voted_condition_rejects_even_groups() {
        let _ = Condition::voted(vec![vec![Clbit::new(0), Clbit::new(1)]], 1);
    }

    #[test]
    fn voted_condition_remaps_every_group_member() {
        let cmap: Vec<Clbit> = (0..6).map(|i| Clbit::new(i + 10)).collect();
        let i = Instruction::gate(Gate::X, vec![Qubit::new(0)]).with_condition(Condition::voted(
            vec![vec![Clbit::new(1), Clbit::new(3), Clbit::new(5)]],
            1,
        ));
        let r = i.remapped(&[Qubit::new(0)], &cmap);
        assert_eq!(
            r.clbits_read(),
            vec![Clbit::new(11), Clbit::new(13), Clbit::new(15)]
        );
    }

    #[test]
    fn condition_reports_its_bits() {
        let c = Condition::register(vec![Clbit::new(2), Clbit::new(0)], 1);
        assert_eq!(c.bits(), vec![Clbit::new(2), Clbit::new(0)]);
        assert_eq!(Condition::bit(Clbit::new(3)).bits(), vec![Clbit::new(3)]);
    }

    #[test]
    fn gate_instruction_checks_arity() {
        let i = Instruction::gate(Gate::Cx, vec![Qubit::new(0), Qubit::new(1)]);
        assert_eq!(i.qubits().len(), 2);
        assert_eq!(i.kind().name(), "cx");
        assert!(i.as_gate().is_some());
    }

    #[test]
    #[should_panic(expected = "expects 2 qubits")]
    fn gate_instruction_rejects_wrong_arity() {
        let _ = Instruction::gate(Gate::Cx, vec![Qubit::new(0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn gate_instruction_rejects_duplicate_operands() {
        let _ = Instruction::gate(Gate::Cx, vec![Qubit::new(0), Qubit::new(0)]);
    }

    #[test]
    fn measure_reads_and_writes_expected_bits() {
        let m = Instruction::measure(Qubit::new(0), Clbit::new(2));
        assert_eq!(m.clbits_written(), &[Clbit::new(2)]);
        assert!(m.clbits_read().is_empty());
        assert!(m.kind().is_nonunitary());
    }

    #[test]
    fn conditioned_gate_reads_condition_bits() {
        let i = Instruction::gate(Gate::X, vec![Qubit::new(0)])
            .with_condition(Condition::bit(Clbit::new(1)));
        assert!(i.is_conditioned());
        assert_eq!(i.clbits_read(), vec![Clbit::new(1)]);
    }

    #[test]
    #[should_panic(expected = "barriers cannot be conditioned")]
    fn barrier_rejects_condition() {
        let _ =
            Instruction::barrier(vec![Qubit::new(0)]).with_condition(Condition::bit(Clbit::new(0)));
    }

    #[test]
    fn remapping_rewrites_all_operands() {
        let qmap = [Qubit::new(5), Qubit::new(3)];
        let cmap = [Clbit::new(9)];
        let i = Instruction::gate(Gate::Cx, vec![Qubit::new(0), Qubit::new(1)])
            .with_condition(Condition::bit(Clbit::new(0)));
        let r = i.remapped(&qmap, &cmap);
        assert_eq!(r.qubits(), &[Qubit::new(5), Qubit::new(3)]);
        assert_eq!(r.clbits_read(), vec![Clbit::new(9)]);

        let m = Instruction::measure(Qubit::new(1), Clbit::new(0)).remapped(&qmap, &cmap);
        assert_eq!(m.qubits(), &[Qubit::new(3)]);
        assert_eq!(m.clbits_written(), &[Clbit::new(9)]);
    }

    #[test]
    fn display_is_readable() {
        let i = Instruction::gate(Gate::Cx, vec![Qubit::new(0), Qubit::new(1)])
            .with_condition(Condition::bit(Clbit::new(2)));
        assert_eq!(i.to_string(), "if (c2 == 1) cx q0 q1");
        let m = Instruction::measure(Qubit::new(0), Clbit::new(0));
        assert_eq!(m.to_string(), "measure q0 -> c0");
    }
}
