//! Dependency DAG over circuit instructions.
//!
//! Two instructions are ordered when they share a resource: a qubit wire, a
//! classical bit one of them writes, or a classical bit one reads that the
//! other writes. The DAG drives depth computation, commutation-aware
//! analyses and the iteration scheduling of the DQC transformation.

use crate::circuit::Circuit;
use std::collections::HashMap;

/// A dependency graph over the instructions of a [`Circuit`].
///
/// Node `k` is instruction `k` of the source circuit. Edges point from each
/// instruction to the instructions that must run after it.
///
/// # Examples
///
/// ```
/// use qcir::{Circuit, Qubit, DagCircuit};
///
/// let mut c = Circuit::new(2, 0);
/// c.h(Qubit::new(0)).cx(Qubit::new(0), Qubit::new(1)).h(Qubit::new(1));
/// let dag = DagCircuit::from_circuit(&c);
/// assert_eq!(dag.successors(0), &[1]);
/// assert_eq!(dag.successors(1), &[2]);
/// ```
#[derive(Debug, Clone)]
pub struct DagCircuit {
    successors: Vec<Vec<usize>>,
    predecessors: Vec<Vec<usize>>,
}

impl DagCircuit {
    /// Builds the dependency DAG of `circuit`.
    #[must_use]
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        // Last instruction to touch each resource. Qubit wires use the key
        // (0, index); classical wires use (1, index).
        let mut last_touch: HashMap<(u8, usize), usize> = HashMap::new();

        for (idx, inst) in circuit.iter().enumerate() {
            let mut deps: Vec<usize> = Vec::new();
            for q in inst.qubits() {
                if let Some(&prev) = last_touch.get(&(0, q.index())) {
                    deps.push(prev);
                }
            }
            for c in inst
                .clbits_written()
                .iter()
                .copied()
                .chain(inst.clbits_read())
            {
                if let Some(&prev) = last_touch.get(&(1, c.index())) {
                    deps.push(prev);
                }
            }
            deps.sort_unstable();
            deps.dedup();
            for d in deps {
                if d != idx {
                    successors[d].push(idx);
                    predecessors[idx].push(d);
                }
            }
            for q in inst.qubits() {
                last_touch.insert((0, q.index()), idx);
            }
            for c in inst
                .clbits_written()
                .iter()
                .copied()
                .chain(inst.clbits_read())
            {
                last_touch.insert((1, c.index()), idx);
            }
        }
        for s in &mut successors {
            s.sort_unstable();
            s.dedup();
        }
        for p in &mut predecessors {
            p.sort_unstable();
            p.dedup();
        }
        Self {
            successors,
            predecessors,
        }
    }

    /// Number of nodes (instructions).
    #[must_use]
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// `true` when the DAG has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }

    /// Instructions that must run after instruction `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn successors(&self, node: usize) -> &[usize] {
        &self.successors[node]
    }

    /// Instructions that must run before instruction `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn predecessors(&self, node: usize) -> &[usize] {
        &self.predecessors[node]
    }

    /// Nodes with no predecessors (instructions that can run first).
    #[must_use]
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.predecessors[i].is_empty())
            .collect()
    }

    /// A topological ordering of the nodes.
    ///
    /// The construction order is already topological, so this is the
    /// identity permutation; it exists so algorithms can state their
    /// assumption explicitly.
    #[must_use]
    pub fn topological_order(&self) -> Vec<usize> {
        (0..self.len()).collect()
    }

    /// Partitions the nodes into ASAP layers: a node's layer is one past the
    /// maximum layer of its predecessors.
    #[must_use]
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let mut level = vec![0usize; self.len()];
        let mut max_level = 0usize;
        for node in 0..self.len() {
            let l = self.predecessors[node]
                .iter()
                .map(|&p| level[p] + 1)
                .max()
                .unwrap_or(0);
            level[node] = l;
            max_level = max_level.max(l);
        }
        let mut out = vec![Vec::new(); if self.is_empty() { 0 } else { max_level + 1 }];
        for (node, &l) in level.iter().enumerate() {
            out[l].push(node);
        }
        out
    }

    /// Length of the longest dependency chain, in nodes.
    #[must_use]
    pub fn longest_path_len(&self) -> usize {
        self.layers().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn independent_gates_have_no_edges() {
        let mut circ = Circuit::new(2, 0);
        circ.h(q(0)).h(q(1));
        let dag = DagCircuit::from_circuit(&circ);
        assert!(dag.successors(0).is_empty());
        assert!(dag.successors(1).is_empty());
        assert_eq!(dag.roots(), vec![0, 1]);
        assert_eq!(dag.layers(), vec![vec![0, 1]]);
    }

    #[test]
    fn shared_qubit_orders_gates() {
        let mut circ = Circuit::new(2, 0);
        circ.h(q(0)).cx(q(0), q(1)).x(q(1));
        let dag = DagCircuit::from_circuit(&circ);
        assert_eq!(dag.successors(0), &[1]);
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.longest_path_len(), 3);
    }

    #[test]
    fn measurement_to_condition_creates_classical_edge() {
        let mut circ = Circuit::new(2, 1);
        circ.measure(q(0), c(0)).x_if(q(1), c(0));
        let dag = DagCircuit::from_circuit(&circ);
        // The conditioned X acts on a different qubit but reads c0.
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn condition_then_measure_also_ordered() {
        // A gate reading a bit must stay before a later measurement
        // overwriting that bit.
        let mut circ = Circuit::new(2, 1);
        circ.x_if(q(1), c(0)).measure(q(0), c(0));
        let dag = DagCircuit::from_circuit(&circ);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn duplicate_resource_edges_are_deduped() {
        let mut circ = Circuit::new(2, 0);
        circ.cx(q(0), q(1)).cx(q(0), q(1));
        let dag = DagCircuit::from_circuit(&circ);
        assert_eq!(dag.successors(0), &[1]);
        assert_eq!(dag.predecessors(1), &[0]);
    }

    #[test]
    fn layers_partition_all_nodes() {
        let mut circ = Circuit::new(3, 0);
        circ.h(q(0)).h(q(1)).cx(q(0), q(1)).h(q(2));
        let dag = DagCircuit::from_circuit(&circ);
        let layers = dag.layers();
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, circ.len());
        assert_eq!(layers[0], vec![0, 1, 3]);
        assert_eq!(layers[1], vec![2]);
    }

    #[test]
    fn empty_circuit_yields_empty_dag() {
        let dag = DagCircuit::from_circuit(&Circuit::new(3, 0));
        assert!(dag.is_empty());
        assert_eq!(dag.longest_path_len(), 0);
        assert!(dag.layers().is_empty());
    }
}
