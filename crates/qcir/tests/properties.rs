//! Property-based tests for the circuit IR.

use proptest::prelude::*;
use qcir::passes::{cancel_adjacent_inverses, peephole_optimize, remove_dead_writes};
use qcir::{depth, gate_count, qasm, Circuit, CircuitStats, DagCircuit, Gate, Qubit};

const NQ: usize = 4;

/// A strategy producing random single/two-qubit gate instructions on `NQ`
/// qubits (always valid: distinct operands in range).
fn arb_gate() -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let one = (0usize..NQ).prop_flat_map(|q| {
        prop_oneof![
            Just(Gate::H),
            Just(Gate::X),
            Just(Gate::Z),
            Just(Gate::S),
            Just(Gate::Sdg),
            Just(Gate::T),
            Just(Gate::Tdg),
            Just(Gate::V),
            Just(Gate::Vdg),
        ]
        .prop_map(move |g| (g, vec![q]))
    });
    let two = (0usize..NQ, 0usize..NQ - 1).prop_flat_map(|(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        prop_oneof![
            Just(Gate::Cx),
            Just(Gate::Cz),
            Just(Gate::Cv),
            Just(Gate::Cvdg)
        ]
        .prop_map(move |g| (g, vec![a, b]))
    });
    prop_oneof![one, two]
}

/// Operations for dynamic-circuit generation (gates + non-unitary ops).
#[derive(Debug, Clone)]
enum DynOp {
    Gate(Gate, Vec<usize>),
    Measure(usize, usize),
    Reset(usize),
    CondX(usize, usize, bool),
}

fn arb_dynamic_op() -> impl Strategy<Value = DynOp> {
    prop_oneof![
        3 => arb_gate().prop_map(|(g, qs)| DynOp::Gate(g, qs)),
        1 => (0usize..NQ, 0usize..NQ).prop_map(|(q, c)| DynOp::Measure(q, c)),
        1 => (0usize..NQ).prop_map(DynOp::Reset),
        1 => (0usize..NQ, 0usize..NQ, any::<bool>())
            .prop_map(|(q, c, v)| DynOp::CondX(q, c, v)),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(), 0..40).prop_map(|gates| {
        let mut c = Circuit::new(NQ, 0);
        for (g, qs) in gates {
            let qubits: Vec<Qubit> = qs.into_iter().map(Qubit::new).collect();
            c.gate(g, &qubits);
        }
        c
    })
}

proptest! {
    #[test]
    fn depth_never_exceeds_gate_count(c in arb_circuit()) {
        prop_assert!(depth(&c) <= gate_count(&c));
    }

    #[test]
    fn depth_at_least_busiest_wire(c in arb_circuit()) {
        let mut per_wire = vec![0usize; NQ];
        for inst in c.iter() {
            for q in inst.qubits() {
                per_wire[q.index()] += 1;
            }
        }
        let busiest = per_wire.into_iter().max().unwrap_or(0);
        prop_assert!(depth(&c) >= busiest);
    }

    #[test]
    fn dag_layer_count_equals_depth(c in arb_circuit()) {
        let dag = DagCircuit::from_circuit(&c);
        prop_assert_eq!(dag.longest_path_len(), depth(&c));
    }

    #[test]
    fn dag_edges_point_forward(c in arb_circuit()) {
        let dag = DagCircuit::from_circuit(&c);
        for node in 0..dag.len() {
            for &s in dag.successors(node) {
                prop_assert!(s > node);
            }
            for &p in dag.predecessors(node) {
                prop_assert!(p < node);
            }
        }
    }

    #[test]
    fn inverse_circuit_has_same_shape(c in arb_circuit()) {
        let inv = c.inverse().unwrap();
        prop_assert_eq!(inv.len(), c.len());
        prop_assert_eq!(depth(&inv), depth(&c));
    }

    #[test]
    fn double_inverse_is_identity(c in arb_circuit()) {
        let back = c.inverse().unwrap().inverse().unwrap();
        prop_assert_eq!(back.instructions(), c.instructions());
    }

    #[test]
    fn cancellation_never_grows_the_circuit(c in arb_circuit()) {
        let opt = cancel_adjacent_inverses(&c);
        prop_assert!(opt.len() <= c.len());
        // Parity of removed gates: cancellation removes pairs.
        prop_assert_eq!((c.len() - opt.len()) % 2, 0);
    }

    #[test]
    fn cancellation_is_idempotent(c in arb_circuit()) {
        let once = cancel_adjacent_inverses(&c);
        let twice = cancel_adjacent_inverses(&once);
        prop_assert_eq!(once.instructions(), twice.instructions());
    }

    #[test]
    fn dead_write_removal_is_idempotent(c in arb_circuit()) {
        let once = remove_dead_writes(&c);
        let twice = remove_dead_writes(&once);
        prop_assert_eq!(once.instructions(), twice.instructions());
    }

    #[test]
    fn peephole_never_grows(c in arb_circuit()) {
        prop_assert!(peephole_optimize(&c).len() <= c.len());
    }

    #[test]
    fn qasm_round_trip_preserves_instructions(c in arb_circuit()) {
        let parsed = qasm::from_qasm(&qasm::to_qasm(&c)).unwrap();
        prop_assert_eq!(parsed.instructions(), c.instructions());
        prop_assert_eq!(parsed.num_qubits(), c.num_qubits());
    }

    #[test]
    fn stats_decompose_gate_count(c in arb_circuit()) {
        let s = CircuitStats::of(&c);
        prop_assert_eq!(
            s.gate_count,
            s.unitary_count + s.measure_count + s.reset_count + s.conditioned_count
        );
        let by_name_total: usize = s.by_name.values().sum();
        prop_assert_eq!(by_name_total, s.gate_count);
    }

    #[test]
    fn dynamic_circuit_qasm_round_trip(
        ops in proptest::collection::vec(arb_dynamic_op(), 0..30)
    ) {
        let mut c = Circuit::new(NQ, NQ);
        for op in ops {
            match op {
                DynOp::Gate(g, qs) => {
                    let qubits: Vec<Qubit> = qs.into_iter().map(Qubit::new).collect();
                    c.gate(g, &qubits);
                }
                DynOp::Measure(q, cl) => {
                    c.measure(Qubit::new(q), qcir::Clbit::new(cl));
                }
                DynOp::Reset(q) => {
                    c.reset(Qubit::new(q));
                }
                DynOp::CondX(q, cl, v) => {
                    let cond = if v {
                        qcir::Condition::bit(qcir::Clbit::new(cl))
                    } else {
                        qcir::Condition::bit_zero(qcir::Clbit::new(cl))
                    };
                    c.gate_if(Gate::X, &[Qubit::new(q)], cond);
                }
            }
        }
        let parsed = qasm::from_qasm(&qasm::to_qasm(&c)).unwrap();
        prop_assert_eq!(parsed.instructions(), c.instructions());
        prop_assert_eq!(parsed.num_clbits(), c.num_clbits());
    }

    #[test]
    fn commutation_is_symmetric(
        (ga, qa) in arb_gate(),
        (gb, qb) in arb_gate(),
    ) {
        let qa: Vec<Qubit> = qa.into_iter().map(Qubit::new).collect();
        let qb: Vec<Qubit> = qb.into_iter().map(Qubit::new).collect();
        let ab = qcir::commute::gates_commute(&ga, &qa, &gb, &qb);
        let ba = qcir::commute::gates_commute(&gb, &qb, &ga, &qa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn gate_commutes_with_itself((g, qs) in arb_gate()) {
        let qs: Vec<Qubit> = qs.into_iter().map(Qubit::new).collect();
        prop_assert!(qcir::commute::gates_commute(&g, &qs, &g, &qs));
    }
}
