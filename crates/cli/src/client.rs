//! `dqct client` — the command-line client for a running `dqctd` service.
//!
//! Speaks the length-prefixed protocol from `dqctd::protocol`: one verb
//! per invocation, responses echoed as JSON lines on stdout. `submit`
//! honors the server's `retry_after_ms` backoff hints when `--retry N`
//! allows resubmission after a `queue-full` or `draining` shed, and
//! retries connect/transport failures with jittered exponential backoff.
//!
//! Every submission carries an idempotency key: `--id` if given, a
//! generated one otherwise. The key is stable across this invocation's
//! retries, so a resubmission after a mid-flight transport failure is
//! answered from the server's completion index (the recorded response,
//! byte-identical) instead of running the job twice.

use dqctd::{
    field_str, field_u64, read_frame, render_submit, write_frame, JobSpec, MAX_FRAME_BYTES,
};
use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;

const CLIENT_USAGE: &str = "\
dqct client - talk to a running dqctd service

USAGE:
    dqct client [--addr HOST:PORT] ping
    dqct client [--addr HOST:PORT] metrics
    dqct client [--addr HOST:PORT] drain
    dqct client [--addr HOST:PORT] cancel <JOB-ID>
    dqct client [--addr HOST:PORT] submit --id ID [OPTIONS] [FILE]

SUBMIT OPTIONS:
    --id ID              idempotency key, echoed on the response (default:
                         generated; reuse an id to fetch a recorded result)
    --shots N            shots to run (server default if omitted)
    --seed N             base RNG seed (server default if omitted)
    --answer I,J,...     answer qubit indices
    --data I,J,...       data qubit indices (unlisted default to data)
    --ancilla I,J,...    ancilla qubit indices
    --scheme S           direct | dynamic1 | dynamic2
    --deadline-ms N      per-job wall-clock budget
    --retry N            up to N resubmissions: on queue-full/draining honor
                         the server's retry_after_ms hint; on connect or
                         transport failures back off exponentially with
                         jitter (the idempotency key makes retries safe)
    FILE                 QASM source ('-' or omitted = stdin)

The server's JSON responses are printed one per line.";

/// Everything `dqct client` needs from its argument list.
#[derive(Debug)]
struct ClientOptions {
    addr: String,
    verb: Verb,
    retry: u32,
}

#[derive(Debug)]
enum Verb {
    Ping,
    Metrics,
    Drain,
    Cancel(String),
    Submit(Box<JobSpec>),
}

fn parse_index_list(value: &str, flag: &str) -> Result<Vec<usize>, String> {
    value
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .map_err(|_| format!("{flag}: '{t}' is not a qubit index"))
        })
        .collect()
}

fn parse_client_args(args: &[String]) -> Result<Option<ClientOptions>, String> {
    let mut addr = "127.0.0.1:7817".to_string();
    let mut retry = 0u32;
    let mut verb: Option<Verb> = None;
    let mut spec: Option<JobSpec> = None;
    let mut qasm_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--addr" => addr = value("--addr")?,
            "--retry" => {
                retry = value("--retry")?
                    .parse()
                    .map_err(|_| "--retry: not a number".to_string())?;
            }
            "ping" if verb.is_none() => verb = Some(Verb::Ping),
            "metrics" if verb.is_none() => verb = Some(Verb::Metrics),
            "drain" if verb.is_none() => verb = Some(Verb::Drain),
            "cancel" if verb.is_none() => {
                verb = Some(Verb::Cancel(value("cancel")?));
            }
            "submit" if verb.is_none() => {
                verb = Some(Verb::Submit(Box::new(JobSpec {
                    id: String::new(),
                    shots: None,
                    seed: None,
                    answer: Vec::new(),
                    data: Vec::new(),
                    ancilla: Vec::new(),
                    scheme: None,
                    deadline_ms: None,
                    qasm: String::new(),
                })));
            }
            other => {
                let Some(Verb::Submit(boxed)) = &mut verb else {
                    return Err(format!(
                        "unknown argument '{other}' (try dqct client --help)"
                    ));
                };
                let job = spec.get_or_insert_with(|| (**boxed).clone());
                match other {
                    "--id" => job.id = value("--id")?,
                    "--shots" => {
                        job.shots = Some(
                            value("--shots")?
                                .parse()
                                .map_err(|_| "--shots: not a number".to_string())?,
                        );
                    }
                    "--seed" => {
                        job.seed = Some(
                            value("--seed")?
                                .parse()
                                .map_err(|_| "--seed: not a number".to_string())?,
                        );
                    }
                    "--answer" => job.answer = parse_index_list(&value("--answer")?, "--answer")?,
                    "--data" => job.data = parse_index_list(&value("--data")?, "--data")?,
                    "--ancilla" => {
                        job.ancilla = parse_index_list(&value("--ancilla")?, "--ancilla")?;
                    }
                    "--scheme" => job.scheme = Some(value("--scheme")?),
                    "--deadline-ms" => {
                        job.deadline_ms = Some(
                            value("--deadline-ms")?
                                .parse()
                                .map_err(|_| "--deadline-ms: not a number".to_string())?,
                        );
                    }
                    path if !path.starts_with("--") => qasm_path = Some(path.to_string()),
                    unknown => return Err(format!("unknown submit option '{unknown}'")),
                }
            }
        }
    }
    let mut verb = verb.ok_or_else(|| {
        "missing verb: ping, metrics, drain, cancel or submit (try dqct client --help)".to_string()
    })?;
    if let Verb::Submit(boxed) = &mut verb {
        let mut job = spec.unwrap_or_else(|| (**boxed).clone());
        if job.id.is_empty() {
            job.id = generated_job_id();
        }
        job.qasm = match qasm_path.as_deref() {
            Some("-") | None => {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("cannot read stdin: {e}"))?;
                buf
            }
            Some(path) => {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
            }
        };
        **boxed = job;
    }
    Ok(Some(ClientOptions { addr, verb, retry }))
}

/// A generated idempotency key: unique per invocation, stable across the
/// invocation's retries, so a resubmission after a transport failure is
/// served from the completion index instead of re-running the job.
fn generated_job_id() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos());
    format!("dqct-{:x}-{nanos:x}", std::process::id())
}

/// Exponential backoff with jitter on the upper half: 50 ms doubling per
/// attempt, capped at 2 s, so simultaneous clients de-synchronize instead
/// of stampeding a server that is restarting or shedding.
fn jittered_backoff_ms(attempt: u32) -> u64 {
    let base = 50u64
        .saturating_mul(1 << attempt.saturating_sub(1).min(6))
        .min(2000);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::from(d.subsec_nanos()));
    base / 2 + nanos % (base / 2 + 1)
}

/// One request/response exchange on a fresh connection; `submit` reads
/// until the job's own answer arrives.
fn exchange(addr: &str, payload: &[u8], until_id: Option<&str>) -> Result<Vec<String>, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write_frame(&mut stream, payload).map_err(|e| format!("cannot send request: {e}"))?;
    let mut responses = Vec::new();
    loop {
        let frame = read_frame(&mut stream, MAX_FRAME_BYTES)
            .map_err(|e| format!("transport failure: {e}"))?
            .ok_or_else(|| "server closed the connection without answering".to_string())?;
        let text = String::from_utf8(frame).map_err(|_| "response is not UTF-8".to_string())?;
        let done = match until_id {
            // Control verbs get exactly one answer.
            None => true,
            // A submission is answered by the frame echoing its id
            // (result, rejected, or job-scoped error).
            Some(id) => field_str(&text, "id") == Some(id),
        };
        responses.push(text);
        if done {
            return Ok(responses);
        }
    }
}

/// Runs `dqct client` and returns the lines to print on stdout.
///
/// # Errors
///
/// Returns a one-line message on argument, connection, or transport
/// failures. Typed service rejections are *not* errors: they print like
/// any other response, and the exit code stays 0 so scripted probes can
/// distinguish "the service said no" from "the service is unreachable".
pub fn run_client(args: &[String]) -> Result<String, String> {
    let Some(options) = parse_client_args(args)? else {
        return Ok(format!("{CLIENT_USAGE}\n"));
    };
    let mut lines = Vec::new();
    match &options.verb {
        Verb::Ping => lines.extend(exchange(&options.addr, b"ping", None)?),
        Verb::Metrics => lines.extend(exchange(&options.addr, b"metrics", None)?),
        Verb::Drain => lines.extend(exchange(&options.addr, b"drain", None)?),
        Verb::Cancel(id) => {
            lines.extend(exchange(
                &options.addr,
                format!("cancel {id}").as_bytes(),
                None,
            )?);
        }
        Verb::Submit(job) => {
            let payload = render_submit(job);
            let mut attempts = 0;
            loop {
                match exchange(&options.addr, &payload, Some(&job.id)) {
                    Ok(responses) => {
                        let last = responses.last().cloned().unwrap_or_default();
                        lines.extend(responses);
                        let rejected = field_str(&last, "type") == Some("rejected");
                        let shed = rejected
                            && matches!(
                                field_str(&last, "reason"),
                                Some("queue-full" | "draining")
                            );
                        // "already in flight" means an earlier attempt landed
                        // and the job is running: keep retrying and the
                        // completion index will answer with its result.
                        let racing = rejected && last.contains("already in flight");
                        if !(shed || racing) || attempts >= options.retry {
                            break;
                        }
                        attempts += 1;
                        let backoff = if shed {
                            field_u64(&last, "retry_after_ms").unwrap_or(25)
                        } else {
                            jittered_backoff_ms(attempts)
                        };
                        std::thread::sleep(Duration::from_millis(backoff));
                    }
                    // Connect or transport failure: the server may be
                    // restarting — back off with jitter and resubmit under
                    // the same idempotency key.
                    Err(failure) => {
                        if attempts >= options.retry {
                            return Err(failure);
                        }
                        attempts += 1;
                        std::thread::sleep(Duration::from_millis(jittered_backoff_ms(attempts)));
                    }
                }
            }
        }
    }
    let mut out = String::new();
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn a_verb_is_required() {
        let err = parse_client_args(&args(&["--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("missing verb"), "{err}");
    }

    #[test]
    fn submit_without_an_id_generates_an_idempotency_key() {
        let options = parse_client_args(&args(&["submit", "--shots", "8", "/dev/null"]))
            .expect("parse")
            .expect("not help");
        let Verb::Submit(job) = &options.verb else {
            panic!("expected submit, got {:?}", options.verb);
        };
        assert!(
            job.id.starts_with("dqct-") && job.id.len() > "dqct-".len(),
            "generated key: {}",
            job.id
        );
    }

    #[test]
    fn backoff_grows_exponentially_within_clamped_jittered_bounds() {
        for attempt in 1..=12u32 {
            let base = 50u64
                .saturating_mul(1 << attempt.saturating_sub(1).min(6))
                .min(2000);
            let ms = jittered_backoff_ms(attempt);
            assert!(
                ms >= base / 2 && ms <= base,
                "attempt {attempt}: {ms} ms outside [{}, {base}]",
                base / 2
            );
        }
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        let err = parse_client_args(&args(&["ping", "--bogus"])).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn control_verbs_parse_with_an_address() {
        let options = parse_client_args(&args(&["--addr", "10.0.0.1:7817", "drain"]))
            .expect("parse")
            .expect("not help");
        assert_eq!(options.addr, "10.0.0.1:7817");
        assert!(matches!(options.verb, Verb::Drain));
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse_client_args(&args(&["--help"]))
            .expect("parse")
            .is_none());
    }
}
