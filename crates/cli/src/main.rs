//! `dqct` — transform a traditional OpenQASM 3 circuit into a dynamic one.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    // `--inject` panics are caught and counted by the resilient executor;
    // keep them off stderr while letting real panics through.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("qfault: injected panic"));
        if !injected {
            default_hook(info);
        }
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `dqct client ...` talks to a running dqctd service instead of
    // transforming locally.
    if args.first().is_some_and(|a| a == "client") {
        return match dqct_cli::client::run_client(&args[1..]) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("dqct client: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match dqct_cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let text = match &opts.input {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dqct: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("dqct: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
    };
    match dqct_cli::run(&text, &opts) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("dqct: {msg}");
            ExitCode::FAILURE
        }
    }
}
