//! # dqct-cli — the transformer as a command-line tool
//!
//! Reads a traditional circuit in OpenQASM 3 (the subset `qcir::qasm`
//! round-trips), applies the dynamic transformation, and writes the dynamic
//! circuit back as OpenQASM 3. The argument parsing and driver live in this
//! library so they are unit-testable; `main.rs` is a thin wrapper.
//!
//! ```text
//! dqct --data 0,1 --answer 2 [--ancilla 3,4] [--scheme direct|dynamic1|dynamic2]
//!      [--reuse auto|off|K] [--verify] [--stats] [--ascii] [--metrics[=json|text]]
//!      [--metrics-out PATH] [--trace PATH] [--trace-clock wall|test]
//!      [--mitigate=reset-verify[,meas-repeat=R][,readout-cal]] [--noise S]
//!      [--deadline-ms N] [--max-failed K] [--inject SPEC]
//!      [--engine shots|prefix|auto] [--shots N] [--seed N]
//!      [--input FILE | FILE]
//! ```
//!
//! `dqct client ...` (see [`client`]) instead talks to a running `dqctd`
//! batch service over its length-prefixed TCP protocol.

use dqc::{
    mitigate_observed, plan_with_scheme_observed, transform_with_scheme_observed, verify,
    CostModel, DynamicScheme, MitigationOptions, QubitRoles, ReadoutCalibration, ResourceSummary,
    ReuseMode, TransformOptions,
};
use qcir::qasm::{from_qasm, to_qasm};
use qcir::Qubit;
use qfault::FaultPlan;
use qobs::{ClockMode, Observer, Tracer};
use qsim::{Engine, Executor, NoiseModel};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

pub mod client;

/// Output format of the `--metrics` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// One machine-readable JSON document (replaces the QASM output).
    Json,
    /// Human-readable `// `-prefixed lines appended after the QASM.
    Text,
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Data qubit indices.
    pub data: Vec<usize>,
    /// Ancilla qubit indices.
    pub ancilla: Vec<usize>,
    /// Answer qubit indices.
    pub answer: Vec<usize>,
    /// Toffoli realization scheme.
    pub scheme: DynamicScheme,
    /// Reuse planning mode (`None` = the paper's single-data-qubit path).
    pub reuse: Option<ReuseMode>,
    /// Verify equivalence exactly and report the TVD.
    pub verify: bool,
    /// Print resource statistics.
    pub stats: bool,
    /// Print ASCII diagrams instead of (in addition to) QASM.
    pub ascii: bool,
    /// Run the static exactness analysis and report the verdict.
    pub analyze: bool,
    /// Collect and print pipeline + simulation metrics.
    ///
    /// `--metrics=json` is kept as a deprecated alias for `--metrics-out -`;
    /// prefer `--metrics-out` so machine-readable output never competes with
    /// the QASM on stdout.
    pub metrics: Option<MetricsFormat>,
    /// Write the metrics JSON document to this path (`-` = stdout, in which
    /// case the document replaces the QASM output).
    pub metrics_out: Option<String>,
    /// Write a Chrome trace-event JSON file of the run to this path
    /// (`-` = stdout, in which case the trace replaces the QASM output).
    /// Implies the instrumented simulation even without `--metrics`.
    pub trace: Option<String>,
    /// Clock for `--trace`: `wall` for real timings, `test` for the
    /// deterministic virtual clock (byte-identical traces at any
    /// `--threads` value).
    pub trace_clock: ClockMode,
    /// Shots for the metrics-mode simulation of the dynamic circuit.
    pub shots: u64,
    /// RNG seed for the metrics-mode simulation (fixed for reproducibility).
    pub seed: u64,
    /// Worker threads for the metrics-mode simulation (`None` = the
    /// executor's default, `available_parallelism`). Per-shot RNG streams
    /// make the counts identical for every value.
    pub threads: Option<usize>,
    /// Mitigation passes applied to the transformed circuit.
    pub mitigate: MitigationOptions,
    /// `device_like` noise scale for the metrics-mode simulation
    /// (`None` = noiseless).
    pub noise: Option<f64>,
    /// Wall-clock budget for the metrics-mode simulation.
    pub deadline_ms: Option<u64>,
    /// Abort the metrics-mode simulation once more than this many shots fail.
    pub max_failed: Option<u64>,
    /// Deterministic fault plan injected into the metrics-mode simulation.
    pub inject: Option<FaultPlan>,
    /// Shot engine for the metrics-mode simulation (`None` = `auto`, which
    /// picks the prefix-sharing branch-tree engine whenever the run is
    /// eligible). When set explicitly, a `// engine:` line reports the
    /// resolved engine.
    pub engine: Option<Engine>,
    /// Input file (`None` = stdin).
    pub input: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            data: Vec::new(),
            ancilla: Vec::new(),
            answer: Vec::new(),
            scheme: DynamicScheme::Dynamic2,
            reuse: None,
            verify: false,
            stats: false,
            ascii: false,
            analyze: false,
            metrics: None,
            metrics_out: None,
            trace: None,
            trace_clock: ClockMode::Wall,
            shots: 1024,
            seed: 7,
            threads: None,
            mitigate: MitigationOptions::none(),
            noise: None,
            deadline_ms: None,
            max_failed: None,
            inject: None,
            engine: None,
            input: None,
        }
    }
}

/// Parses the CLI argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on unknown flags, missing values or
/// malformed index lists.
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data" => opts.data = parse_list(it.next(), "--data")?,
            "--ancilla" => opts.ancilla = parse_list(it.next(), "--ancilla")?,
            "--answer" => opts.answer = parse_list(it.next(), "--answer")?,
            "--scheme" => {
                let v = it.next().ok_or("--scheme needs a value")?;
                opts.scheme = match v.as_str() {
                    "direct" => DynamicScheme::Direct,
                    "dynamic1" | "dynamic-1" => DynamicScheme::Dynamic1,
                    "dynamic2" | "dynamic-2" => DynamicScheme::Dynamic2,
                    other => return Err(format!("unknown scheme '{other}'")),
                };
            }
            "--reuse" => {
                let v = it.next().ok_or("--reuse needs 'auto', 'off' or a width")?;
                opts.reuse = Some(v.parse().map_err(|e| format!("--reuse: {e}"))?);
            }
            "--verify" => opts.verify = true,
            "--analyze" => opts.analyze = true,
            "--stats" => opts.stats = true,
            "--ascii" => opts.ascii = true,
            "--metrics" => opts.metrics = Some(MetricsFormat::Text),
            "--metrics-out" => {
                let v = it
                    .next()
                    .ok_or("--metrics-out needs a path ('-' for stdout)")?;
                opts.metrics_out = Some(v.clone());
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a path ('-' for stdout)")?;
                opts.trace = Some(v.clone());
            }
            "--trace-clock" => {
                let v = it.next().ok_or("--trace-clock needs 'wall' or 'test'")?;
                opts.trace_clock = parse_clock(v)?;
            }
            "--shots" => {
                let v = it.next().ok_or("--shots needs a value")?;
                opts.shots = v
                    .parse()
                    .map_err(|_| format!("--shots: '{v}' is not a shot count"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v
                    .parse()
                    .map_err(|_| format!("--seed: '{v}' is not a seed"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads: '{v}' is not a thread count"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                opts.threads = Some(n);
            }
            "--mitigate" => {
                let v = it.next().ok_or("--mitigate needs a pass list")?;
                opts.mitigate =
                    MitigationOptions::parse(v).map_err(|e| format!("--mitigate: {e}"))?;
            }
            "--noise" => {
                let v = it.next().ok_or("--noise needs a scale")?;
                let s: f64 = v
                    .parse()
                    .map_err(|_| format!("--noise: '{v}' is not a noise scale"))?;
                if !s.is_finite() || s < 0.0 {
                    return Err(format!("--noise: scale must be finite and >= 0, got {v}"));
                }
                opts.noise = Some(s);
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                // 0 is legal: an already-expired deadline degrades to empty
                // counts with Termination::Deadline, useful for chaos drills.
                opts.deadline_ms = Some(
                    v.parse()
                        .map_err(|_| format!("--deadline-ms: '{v}' is not a duration"))?,
                );
            }
            "--max-failed" => {
                let v = it.next().ok_or("--max-failed needs a value")?;
                opts.max_failed = Some(
                    v.parse()
                        .map_err(|_| format!("--max-failed: '{v}' is not a count"))?,
                );
            }
            "--inject" => {
                let v = it.next().ok_or("--inject needs a fault spec")?;
                opts.inject = Some(FaultPlan::parse(v).map_err(|e| format!("--inject: {e}"))?);
            }
            "--engine" => {
                let v = it
                    .next()
                    .ok_or("--engine needs 'shots', 'prefix' or 'auto'")?;
                opts.engine = Some(parse_engine(v)?);
            }
            "--input" => {
                opts.input = Some(it.next().ok_or("--input needs a value")?.clone());
            }
            "--help" | "-h" => return Err(usage()),
            other => {
                if let Some(spec) = other.strip_prefix("--reuse=") {
                    opts.reuse = Some(spec.parse().map_err(|e| format!("--reuse: {e}"))?);
                } else if let Some(spec) = other.strip_prefix("--mitigate=") {
                    opts.mitigate =
                        MitigationOptions::parse(spec).map_err(|e| format!("--mitigate: {e}"))?;
                } else if let Some(spec) = other.strip_prefix("--inject=") {
                    opts.inject =
                        Some(FaultPlan::parse(spec).map_err(|e| format!("--inject: {e}"))?);
                } else if let Some(name) = other.strip_prefix("--engine=") {
                    opts.engine = Some(parse_engine(name)?);
                } else if let Some(path) = other.strip_prefix("--metrics-out=") {
                    opts.metrics_out = Some(path.to_string());
                } else if let Some(clock) = other.strip_prefix("--trace-clock=") {
                    opts.trace_clock = parse_clock(clock)?;
                } else if let Some(path) = other.strip_prefix("--trace=") {
                    opts.trace = Some(path.to_string());
                } else if let Some(fmt) = other.strip_prefix("--metrics=") {
                    opts.metrics = Some(match fmt {
                        "json" => MetricsFormat::Json,
                        "text" => MetricsFormat::Text,
                        bad => {
                            return Err(format!(
                                "unknown metrics format '{bad}' (expected 'json' or 'text')"
                            ))
                        }
                    });
                } else if !other.starts_with('-') && opts.input.is_none() {
                    // Positional input file: `dqct --metrics=json circuit.qasm`.
                    opts.input = Some(other.to_string());
                } else {
                    return Err(format!("unknown argument '{other}'\n{}", usage()));
                }
            }
        }
    }
    if opts.answer.is_empty() {
        return Err(format!("--answer is required\n{}", usage()));
    }
    if opts.mitigate.readout_cal && opts.noise.is_none() {
        return Err(
            "--mitigate readout-cal needs --noise (the confusion matrix is \
             calibrated against the simulated noise model)"
                .to_string(),
        );
    }
    if opts.inject.is_some()
        && opts.metrics.is_none()
        && opts.metrics_out.is_none()
        && opts.trace.is_none()
    {
        return Err(
            "--inject needs --metrics, --metrics-out or --trace (faults are injected \
             into the instrumented simulation)"
                .to_string(),
        );
    }
    if opts.engine.is_some()
        && opts.metrics.is_none()
        && opts.metrics_out.is_none()
        && opts.trace.is_none()
    {
        return Err(
            "--engine needs --metrics, --metrics-out or --trace (the engine selects \
             how the instrumented simulation samples shots)"
                .to_string(),
        );
    }
    // stdout carries exactly one document; reject competing claims up front.
    let stdout_claims = usize::from(opts.metrics == Some(MetricsFormat::Json))
        + usize::from(opts.metrics_out.as_deref() == Some("-"))
        + usize::from(opts.trace.as_deref() == Some("-"));
    if stdout_claims > 1 {
        return Err(
            "at most one of --metrics=json, --metrics-out - and --trace - may write \
             to stdout; send the others to files"
                .to_string(),
        );
    }
    Ok(opts)
}

fn parse_engine(v: &str) -> Result<Engine, String> {
    Engine::parse(v).ok_or_else(|| {
        format!("--engine: unknown engine '{v}' (expected 'shots', 'prefix' or 'auto')")
    })
}

fn parse_clock(v: &str) -> Result<ClockMode, String> {
    match v {
        "wall" => Ok(ClockMode::Wall),
        "test" => Ok(ClockMode::Test),
        other => Err(format!(
            "--trace-clock: unknown clock '{other}' (expected 'wall' or 'test')"
        )),
    }
}

fn parse_list(value: Option<&String>, flag: &str) -> Result<Vec<usize>, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("{flag}: '{s}' is not a qubit index"))
        })
        .collect()
}

/// The usage string.
#[must_use]
pub fn usage() -> String {
    "usage: dqct --answer <i,j,...> [--data <i,...>] [--ancilla <i,...>]\n\
     \x20           [--scheme direct|dynamic1|dynamic2] [--reuse auto|off|K]\n\
     \x20           [--verify] [--analyze]\n\
     \x20           [--stats] [--metrics[=json|text]] [--shots N] [--seed N]\n\
     \x20           [--threads N] [--ascii] [--metrics-out PATH]\n\
     \x20           [--trace PATH] [--trace-clock wall|test]\n\
     \x20           [--mitigate reset-verify[=K],meas-repeat=R,readout-cal]\n\
     \x20           [--noise S] [--deadline-ms N] [--max-failed K]\n\
     \x20           [--inject seed=N,<site>=<rate>,...,delay-ms=N]\n\
     \x20           [--engine shots|prefix|auto] [--input FILE | FILE]\n\
     Reads OpenQASM 3 from FILE or stdin; qubits not listed under --answer\n\
     or --ancilla default to data.\n\
     --reuse explores the qubit-reuse design space: K physical lanes\n\
     replay the work qubits ('off' = one lane per work qubit, i.e. no\n\
     reuse; 'auto' picks the best width under the cost model; K = 1 is\n\
     the paper's scheme and the default without --reuse). A '// reuse:'\n\
     line reports the selection.\n\
     --metrics instruments the transform, verification and a seeded\n\
     simulation of the dynamic circuit, then prints the collected\n\
     counters, gauges and timing histograms ('json' prints one JSON\n\
     document instead of QASM; 'text' appends '//'-prefixed lines).\n\
     --metrics-out writes the metrics JSON document to PATH ('-' for\n\
     stdout) so it never interleaves with the QASM; --metrics=json is a\n\
     deprecated alias for --metrics-out -.\n\
     --trace writes a Chrome trace-event JSON file ('-' for stdout) of\n\
     the run — pipeline phases, per-shot spans, measure/reset/condition\n\
     sub-spans and fault instants — loadable in Perfetto or\n\
     chrome://tracing. --trace-clock test swaps the wall clock for a\n\
     deterministic virtual clock: traces become byte-identical for\n\
     every --threads value.\n\
     --threads sets the shot executor's worker count (default: all\n\
     cores); per-shot RNG streams keep seeded counts bit-identical\n\
     for every thread count.\n\
     --mitigate hardens the dynamic circuit: verified resets (K rounds),\n\
     repeated measurements with majority vote (R odd readings) and, with\n\
     --noise, readout-confusion inversion over the simulated counts.\n\
     --noise S simulates under NoiseModel::device_like(S); --deadline-ms\n\
     and --max-failed bound the simulation, which then degrades to partial\n\
     counts plus a run report instead of failing.\n\
     --inject runs the simulation under a deterministic fault plan (sites:\n\
     reset-leak, meas-flip, cc-flip, cc-loss, gate-drop, gate-dup, panic,\n\
     delay; rates in [0,1]); injections are counted as fault.injected.*\n\
     metrics and are bit-identical for every --threads value.\n\
     --engine picks the shot engine: 'shots' re-runs the circuit per shot,\n\
     'prefix' shares unitary prefixes via a branch tree and samples shots\n\
     by walking it (bit-identical counts at the same seed), 'auto' (the\n\
     default) uses prefix whenever the run is eligible — tracing, fault\n\
     injection, gate/idle noise or run budgets fall back to per-shot.\n\
     A '// engine:' line reports the resolved engine."
        .to_string()
}

/// Runs the transformation on QASM text, returning the full output text.
///
/// # Errors
///
/// Returns a message for parse errors, role mismatches or unrealizable
/// circuits.
pub fn run(qasm_text: &str, opts: &CliOptions) -> Result<String, String> {
    let circuit = from_qasm(qasm_text).map_err(|e| e.to_string())?;
    // Ingestion boundary: reject structurally invalid circuits with a typed
    // one-line message instead of letting them panic deeper in the pipeline.
    circuit
        .validate()
        .map_err(|e| format!("invalid input circuit: {e}"))?;
    // Default: every unlisted qubit is data.
    let mut data: Vec<Qubit> = opts.data.iter().map(|&i| Qubit::new(i)).collect();
    if data.is_empty() {
        data = (0..circuit.num_qubits())
            .filter(|i| !opts.answer.contains(i) && !opts.ancilla.contains(i))
            .map(Qubit::new)
            .collect();
    }
    let roles = QubitRoles::new(
        data,
        opts.ancilla.iter().map(|&i| Qubit::new(i)).collect(),
        opts.answer.iter().map(|&i| Qubit::new(i)).collect(),
    );
    // Tracing or metrics output of any kind runs the instrumented pipeline
    // plus a seeded simulation of the dynamic circuit.
    let wants_sim = opts.metrics.is_some() || opts.metrics_out.is_some() || opts.trace.is_some();
    let obs = if wants_sim {
        Observer::metrics_only()
    } else {
        Observer::disabled()
    };
    let tracer = if opts.trace.is_some() {
        Tracer::enabled(opts.trace_clock)
    } else {
        Tracer::disabled()
    };
    // Pipeline-phase spans ride on the trace's top lane. On an error return
    // the open span is simply dropped — no trace file is written then.
    let mut phases = tracer.top_local();
    if let Some(t) = phases.as_mut() {
        t.begin("pipeline.transform");
    }
    let mut reuse_line = None;
    let dynamic = match opts.reuse {
        Some(mode) => {
            let (dynamic, report) = plan_with_scheme_observed(
                &circuit,
                &roles,
                opts.scheme,
                mode,
                &CostModel::default(),
                &TransformOptions::default(),
                &obs,
            )
            .map_err(|e| e.to_string())?;
            reuse_line = Some(format!("// reuse: {report}"));
            dynamic
        }
        None => transform_with_scheme_observed(
            &circuit,
            &roles,
            opts.scheme,
            &TransformOptions::default(),
            &obs,
        )
        .map_err(|e| e.to_string())?,
    };
    // Rewrite passes (verified resets, repeated measurements) widen the
    // classical register; readout calibration is counts post-processing only.
    let mitigated = if opts.mitigate.reset_verify.is_some() || opts.mitigate.meas_repeat.is_some() {
        Some(mitigate_observed(dynamic.circuit(), &opts.mitigate, &obs))
    } else {
        None
    };
    let hardened = mitigated
        .as_ref()
        .map_or(dynamic.circuit(), |m| m.circuit());
    if let Some(t) = phases.as_mut() {
        t.end();
    }
    let noise = match opts.noise {
        Some(scale) => Some(NoiseModel::try_device_like(scale).map_err(|e| e.to_string())?),
        None => None,
    };

    let mut out = String::new();
    if opts.ascii {
        let _ = writeln!(out, "// traditional:");
        for line in qcir::ascii::draw(&circuit).lines() {
            let _ = writeln!(out, "// {line}");
        }
        let _ = writeln!(out, "// dynamic ({}):", opts.scheme);
        for line in qcir::ascii::draw(dynamic.circuit()).lines() {
            let _ = writeln!(out, "// {line}");
        }
    }
    if let Some(line) = &reuse_line {
        let _ = writeln!(out, "{line}");
    }
    if opts.stats {
        let tradi = ResourceSummary::of_circuit(&circuit);
        let dyna = ResourceSummary::of_dynamic(&dynamic);
        let _ = writeln!(out, "// traditional: {tradi}");
        let _ = writeln!(out, "// dynamic:     {dyna}");
    }
    if opts.analyze {
        match dqc::analysis::analyze(&circuit, &roles) {
            Ok(a) => match a.exactness {
                dqc::Exactness::Exact => {
                    let _ = writeln!(
                        out,
                        "// analysis: EXACT ({} classicalized control(s), none disturbed)",
                        a.classicalized_gates
                    );
                }
                dqc::Exactness::Approximate { conflicts } => {
                    let _ = writeln!(
                        out,
                        "// analysis: APPROXIMATE ({} conflict(s)):",
                        conflicts.len()
                    );
                    for c in conflicts {
                        let _ = writeln!(out, "//   {c}");
                    }
                }
            },
            Err(e) => {
                let _ = writeln!(out, "// analysis: n/a ({e})");
            }
        }
    }
    if opts.verify {
        if let Some(t) = phases.as_mut() {
            t.begin("pipeline.verify");
        }
        let report = verify::compare_observed(&circuit, &roles, &dynamic, &obs);
        if let Some(t) = phases.as_mut() {
            t.end();
        }
        let _ = writeln!(
            out,
            "// verify: tvd = {:.6}, expected outcome '{}' p_tradi = {:.4} p_dyn = {:.4}",
            report.tvd, report.expected_outcome, report.p_traditional, report.p_dynamic
        );
    }
    // Phase spans are submitted before the simulation so the merged trace
    // always reads pipeline-first, executor-second.
    if let Some(t) = phases.take() {
        tracer.submit(t.into_events());
    }
    if wants_sim {
        // Run the (possibly hardened) dynamic circuit through the shot
        // executor under the same observer, so simulation counters land next
        // to the transform spans. The resilient entry point returns partial
        // counts plus a run report when a budget is exhausted.
        let mut exec = Executor::new()
            .shots(opts.shots)
            .seed(opts.seed)
            .observer(obs.clone())
            .tracer(tracer.clone());
        if let Some(threads) = opts.threads {
            exec = exec.threads(threads);
        }
        if let Some(model) = &noise {
            exec = exec.noise(model.clone());
        }
        if let Some(ms) = opts.deadline_ms {
            exec = exec.deadline(Duration::from_millis(ms));
        }
        if let Some(k) = opts.max_failed {
            exec = exec.max_failed(k);
        }
        if let Some(plan) = &opts.inject {
            exec = exec.fault_hook(Arc::new(plan.clone()));
        }
        if let Some(engine) = opts.engine {
            exec = exec.engine(engine);
            // Report the engine actually used: the prefix tree additionally
            // requires an unbounded resilient run, so budget flags force the
            // per-shot path even when the circuit itself is tree-eligible.
            let resolved = if opts.deadline_ms.is_some() || opts.max_failed.is_some() {
                qsim::Engine::Shots
            } else {
                exec.resolve_engine(hardened)
            };
            let _ = writeln!(out, "// engine: {resolved}");
        }
        let (counts, report) = exec.run_resilient(hardened);
        let mut run_lines = Vec::new();
        run_lines.push(format!(
            "run: completed={} failed={} discarded={} termination={}",
            report.completed, report.failed, report.discarded, report.termination
        ));
        let resolved = mitigated
            .as_ref()
            .map(|m| m.resolve_observed(&counts, &obs));
        if let Some(r) = &resolved {
            run_lines.push(format!(
                "mitigate: votes_flipped={} reset_verify_fired={}",
                r.votes_flipped, r.reset_verify_fired
            ));
        }
        if opts.mitigate.readout_cal {
            let final_counts = resolved.as_ref().map_or(&counts, |r| &r.counts);
            let model = noise
                .as_ref()
                .unwrap_or_else(|| unreachable!("parse_args requires --noise for readout-cal"));
            let width = mitigated
                .as_ref()
                .map_or(hardened.num_clbits(), |m| m.original_clbits());
            let corrected = ReadoutCalibration::calibrate(
                model,
                width,
                opts.shots.max(4096),
                opts.seed.wrapping_add(1),
            )
            .and_then(|cal| cal.correct(final_counts))
            .map_err(|e| e.to_string())?;
            if let Some(top) = corrected.argmax() {
                obs.gauge_set("mitigate.readout_cal_top_p", corrected.get(top));
                run_lines.push(format!(
                    "readout-cal: argmax '{top}' p={:.4}",
                    corrected.get(top)
                ));
            }
        }
        // Side-channel documents first (files never compete with stdout),
        // then at most one stdout claimant — parse_args enforced that.
        let metrics_json = {
            let mut json = obs.metrics().to_json();
            json.push('\n');
            json
        };
        if let Some(path) = &opts.metrics_out {
            if path != "-" {
                std::fs::write(path, &metrics_json)
                    .map_err(|e| format!("--metrics-out: cannot write '{path}': {e}"))?;
            }
        }
        let mut trace_doc = None;
        if let Some(path) = &opts.trace {
            let mut json = tracer.export_chrome();
            json.push('\n');
            if path == "-" {
                trace_doc = Some(json);
            } else {
                std::fs::write(path, &json)
                    .map_err(|e| format!("--trace: cannot write '{path}': {e}"))?;
            }
        }
        if let Some(doc) = trace_doc {
            return Ok(doc);
        }
        if opts.metrics_out.as_deref() == Some("-") {
            return Ok(metrics_json);
        }
        match opts.metrics {
            Some(MetricsFormat::Json) => {
                // Deprecated alias for `--metrics-out -`: the output is
                // exactly one JSON document.
                return Ok(metrics_json);
            }
            Some(MetricsFormat::Text) => {
                for line in run_lines {
                    let _ = writeln!(out, "// {line}");
                }
                for line in obs.metrics().to_text().lines() {
                    let _ = writeln!(out, "// {line}");
                }
            }
            None => {}
        }
        if opts.trace.as_deref().is_some_and(|p| p != "-") {
            // A compact profile next to the QASM when the full trace went to
            // a file: top spans by total time, then instant counts.
            for line in tracer.summary(8).lines() {
                let _ = writeln!(out, "// {line}");
            }
        }
    }
    out.push_str(&to_qasm(hardened));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    const BV_QASM: &str = "\
OPENQASM 3.0;
include \"stdgates.inc\";
qubit[3] q;
x q[2];
h q[2];
h q[0];
cx q[0], q[2];
h q[0];
h q[1];
cx q[1], q[2];
h q[1];
";

    #[test]
    fn parse_full_flag_set() {
        let o = parse_args(&args(
            "--data 0,1 --answer 2 --scheme dynamic1 --verify --stats --ascii --input f.qasm",
        ))
        .unwrap();
        assert_eq!(o.data, vec![0, 1]);
        assert_eq!(o.answer, vec![2]);
        assert_eq!(o.scheme, DynamicScheme::Dynamic1);
        assert!(o.verify && o.stats && o.ascii);
        assert_eq!(o.input.as_deref(), Some("f.qasm"));
    }

    #[test]
    fn answer_flag_is_required() {
        let err = parse_args(&args("--data 0,1")).unwrap_err();
        assert!(err.contains("--answer is required"));
    }

    #[test]
    fn unknown_flags_and_schemes_are_rejected() {
        assert!(parse_args(&args("--answer 2 --frobnicate")).is_err());
        assert!(parse_args(&args("--answer 2 --scheme warp")).is_err());
        assert!(parse_args(&args("--answer x")).is_err());
    }

    #[test]
    fn analyze_flag_reports_verdicts() {
        let opts = parse_args(&args("--answer 2 --analyze")).unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        assert!(out.contains("// analysis: EXACT"), "{out}");

        let toffoli = "qubit[3] q;\nh q[0];\nh q[1];\ncx q[0], q[1];\nh q[0];\ncx q[1], q[2];\n";
        let out = run(toffoli, &opts).unwrap();
        assert!(out.contains("// analysis: APPROXIMATE"), "{out}");
    }

    #[test]
    fn reuse_flag_parses_both_forms_and_rejects_junk() {
        let auto = parse_args(&args("--answer 2 --reuse auto")).unwrap();
        assert_eq!(auto.reuse, Some(ReuseMode::Auto));
        let off = parse_args(&args("--answer 2 --reuse=off")).unwrap();
        assert_eq!(off.reuse, Some(ReuseMode::Off));
        let k = parse_args(&args("--answer 2 --reuse=3")).unwrap();
        assert_eq!(k.reuse, Some(ReuseMode::Width(3)));
        assert_eq!(parse_args(&args("--answer 2")).unwrap().reuse, None);
        let err = parse_args(&args("--answer 2 --reuse=wide")).unwrap_err();
        assert!(err.contains("--reuse:"), "{err}");
        assert!(parse_args(&args("--answer 2 --reuse")).is_err());
    }

    #[test]
    fn reuse_auto_reports_selection_and_keeps_qasm_parseable() {
        let opts = parse_args(&args("--answer 2 --reuse auto --verify")).unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        assert!(out.contains("// reuse: "), "{out}");
        assert!(out.contains("// verify: tvd = 0.000000"), "{out}");
        assert!(from_qasm(&out).is_ok(), "{out}");
    }

    #[test]
    fn reuse_off_emits_the_full_width_circuit() {
        let opts = parse_args(&args("--answer 2 --reuse off")).unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        // No reuse: 2 work lanes + 1 answer wire, and no resets at all.
        assert!(out.contains("qubit[3] q;"), "{out}");
        assert!(!out.contains("reset"), "{out}");
    }

    #[test]
    fn reuse_width_one_matches_the_default_path() {
        let legacy = parse_args(&args("--answer 2")).unwrap();
        let k1 = parse_args(&args("--answer 2 --reuse 1")).unwrap();
        let a = run(BV_QASM, &legacy).unwrap();
        let b = run(BV_QASM, &k1).unwrap();
        // The reuse line is the only difference; the QASM is identical.
        let stripped: String =
            b.lines()
                .filter(|l| !l.starts_with("// reuse:"))
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
        assert_eq!(a, stripped);
    }

    #[test]
    fn reuse_infeasible_width_is_a_clear_error() {
        let opts = parse_args(&args("--answer 2 --reuse 9")).unwrap();
        let err = run(BV_QASM, &opts).unwrap_err();
        assert!(err.contains("invalid reuse plan"), "{err}");
    }

    #[test]
    fn metrics_flag_parses_all_forms() {
        let bare = parse_args(&args("--answer 2 --metrics")).unwrap();
        assert_eq!(bare.metrics, Some(MetricsFormat::Text));
        let json = parse_args(&args("--answer 2 --metrics=json")).unwrap();
        assert_eq!(json.metrics, Some(MetricsFormat::Json));
        let text = parse_args(&args("--answer 2 --metrics=text")).unwrap();
        assert_eq!(text.metrics, Some(MetricsFormat::Text));
        assert_eq!(bare.shots, 1024);
        assert_eq!(bare.seed, 7);
        assert_eq!(bare.threads, None);
        let tuned = parse_args(&args(
            "--answer 2 --metrics --shots 64 --seed 3 --threads 4",
        ))
        .unwrap();
        assert_eq!((tuned.shots, tuned.seed, tuned.threads), (64, 3, Some(4)));
    }

    #[test]
    fn threads_flag_rejects_bad_values() {
        assert!(parse_args(&args("--answer 2 --threads many")).is_err());
        let err = parse_args(&args("--answer 2 --threads 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(parse_args(&args("--answer 2 --threads")).is_err());
    }

    #[test]
    fn bad_metrics_format_is_a_clear_error() {
        let err = parse_args(&args("--answer 2 --metrics=xml")).unwrap_err();
        assert!(
            err.contains("unknown metrics format 'xml'")
                && err.contains("expected 'json' or 'text'"),
            "{err}"
        );
        assert!(parse_args(&args("--answer 2 --shots lots")).is_err());
        assert!(parse_args(&args("--answer 2 --seed abc")).is_err());
    }

    #[test]
    fn positional_input_file_is_accepted() {
        let o = parse_args(&args("--answer 2 circuit.qasm")).unwrap();
        assert_eq!(o.input.as_deref(), Some("circuit.qasm"));
        // A second positional is rejected.
        assert!(parse_args(&args("--answer 2 a.qasm b.qasm")).is_err());
    }

    #[test]
    fn metrics_json_mode_emits_one_valid_document() {
        let opts = parse_args(&args("--answer 2 --metrics=json --shots 32")).unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        qobs::json::validate(&out).expect("output must be valid JSON");
        // The acceptance-criteria fields are all present.
        for key in [
            "\"transform.lower_ns\"",
            "\"transform.reorder_ns\"",
            "\"transform.emit_ns\"",
            "\"transform.peephole_ns\"",
            "\"executor.run_resilient_ns\"",
            "\"executor.shots\"",
            "\"executor.gates.h\"",
            "\"executor.resets\"",
            "\"executor.mid_circuit_measurements\"",
            "\"executor.cc_fired\"",
            "\"executor.cc_skipped\"",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        // 32 shots requested.
        assert!(out.contains("\"executor.shots\":32"), "{out}");
        // No QASM in JSON mode.
        assert!(!out.contains("OPENQASM"));
    }

    #[test]
    fn metrics_text_mode_appends_comments_and_keeps_qasm() {
        let opts = parse_args(&args("--answer 2 --metrics --shots 16")).unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        assert!(out.contains("qubit[2] q;"), "{out}");
        assert!(out.contains("// counter   executor.shots = 16"), "{out}");
        assert!(from_qasm(&out).is_ok(), "QASM must stay parseable");
    }

    #[test]
    fn metrics_runs_are_seed_reproducible() {
        let opts = parse_args(&args("--answer 2 --metrics=json --shots 64 --seed 5")).unwrap();
        let (a, b) = (run(BV_QASM, &opts).unwrap(), run(BV_QASM, &opts).unwrap());
        let counters = |s: &str| {
            let start = s.find("\"counters\"").unwrap();
            let end = s.find("\"gauges\"").unwrap();
            s[start..end].to_string()
        };
        assert_eq!(counters(&a), counters(&b));
    }

    #[test]
    fn metrics_counters_are_identical_across_thread_counts() {
        // The stronger determinism contract: per-shot RNG streams make the
        // seeded simulation (and hence every outcome-dependent counter,
        // e.g. executor.cc_fired) bit-identical at any worker count.
        let counters = |threads: &str| {
            let opts = parse_args(&args(&format!(
                "--answer 2 --metrics=json --shots 128 --seed 5 --threads {threads}"
            )))
            .unwrap();
            let out = run(BV_QASM, &opts).unwrap();
            let start = out.find("\"counters\"").unwrap();
            let end = out.find("\"gauges\"").unwrap();
            out[start..end].to_string()
        };
        let one = counters("1");
        assert_eq!(counters("2"), one);
        assert_eq!(counters("8"), one);
    }

    #[test]
    fn mitigate_flag_parses_both_forms() {
        let eq = parse_args(&args("--answer 2 --mitigate=reset-verify,meas-repeat=3")).unwrap();
        assert_eq!(eq.mitigate.reset_verify, Some(1));
        assert_eq!(eq.mitigate.meas_repeat, Some(3));
        let sep = parse_args(&args("--answer 2 --mitigate meas-repeat=5")).unwrap();
        assert_eq!(sep.mitigate.meas_repeat, Some(5));
        let err = parse_args(&args("--answer 2 --mitigate=meas-repeat=2")).unwrap_err();
        assert!(err.contains("--mitigate:"), "{err}");
    }

    #[test]
    fn readout_cal_requires_noise() {
        let err = parse_args(&args("--answer 2 --mitigate=readout-cal")).unwrap_err();
        assert!(err.contains("needs --noise"), "{err}");
        let ok = parse_args(&args("--answer 2 --mitigate=readout-cal --noise 0.5")).unwrap();
        assert!(ok.mitigate.readout_cal);
        assert_eq!(ok.noise, Some(0.5));
    }

    #[test]
    fn resilience_flags_are_validated() {
        assert!(parse_args(&args("--answer 2 --noise -1")).is_err());
        assert!(parse_args(&args("--answer 2 --noise hot")).is_err());
        assert!(parse_args(&args("--answer 2 --deadline-ms soon")).is_err());
        assert!(parse_args(&args("--answer 2 --max-failed some")).is_err());
        let o = parse_args(&args("--answer 2 --deadline-ms 250 --max-failed 3")).unwrap();
        assert_eq!(o.deadline_ms, Some(250));
        assert_eq!(o.max_failed, Some(3));
        // An already-expired deadline is a legal chaos-drill budget.
        let zero = parse_args(&args("--answer 2 --deadline-ms 0")).unwrap();
        assert_eq!(zero.deadline_ms, Some(0));
    }

    #[test]
    fn inject_flag_parses_and_requires_metrics() {
        let o = parse_args(&args(
            "--answer 2 --metrics=json --inject seed=9,meas-flip=0.25",
        ))
        .unwrap();
        let plan = o.inject.expect("plan parsed");
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.rate(qfault::FaultSite::MeasFlip), 0.25);
        // `--inject=SPEC` form too.
        let eq = parse_args(&args("--answer 2 --metrics --inject=reset-leak=0.1")).unwrap();
        assert!(eq.inject.is_some());
        let err = parse_args(&args("--answer 2 --inject meas-flip=0.25")).unwrap_err();
        assert!(err.contains("--inject needs --metrics"), "{err}");
        let err = parse_args(&args("--answer 2 --metrics --inject warp=0.1")).unwrap_err();
        assert!(err.contains("--inject: bad fault spec token"), "{err}");
    }

    #[test]
    fn injected_faults_are_counted_and_thread_invariant() {
        let counters = |threads: &str| {
            let opts = parse_args(&args(&format!(
                "--answer 2 --metrics=json --shots 128 --seed 5 --threads {threads} \
                 --inject seed=3,meas-flip=0.2,reset-leak=0.2,cc-flip=0.1,gate-drop=0.1"
            )))
            .unwrap();
            let out = run(BV_QASM, &opts).unwrap();
            let start = out.find("\"counters\"").unwrap();
            let end = out.find("\"gauges\"").unwrap();
            out[start..end].to_string()
        };
        let one = counters("1");
        assert!(one.contains("\"fault.injected.meas-flip\""), "{one}");
        assert!(one.contains("\"fault.injected.reset-leak\""), "{one}");
        assert_eq!(counters("8"), one);
    }

    #[test]
    fn engine_flag_parses_both_forms_and_rejects_junk() {
        let sep = parse_args(&args("--answer 2 --metrics --engine prefix")).unwrap();
        assert_eq!(sep.engine, Some(Engine::Prefix));
        let eq = parse_args(&args("--answer 2 --metrics --engine=shots")).unwrap();
        assert_eq!(eq.engine, Some(Engine::Shots));
        let auto = parse_args(&args("--answer 2 --metrics --engine auto")).unwrap();
        assert_eq!(auto.engine, Some(Engine::Auto));
        assert_eq!(parse_args(&args("--answer 2")).unwrap().engine, None);
        let err = parse_args(&args("--answer 2 --metrics --engine=warp")).unwrap_err();
        assert!(err.contains("unknown engine 'warp'"), "{err}");
        assert!(parse_args(&args("--answer 2 --metrics --engine")).is_err());
        // Like --inject, the flag shapes the instrumented simulation only.
        let err = parse_args(&args("--answer 2 --engine prefix")).unwrap_err();
        assert!(err.contains("--engine needs --metrics"), "{err}");
    }

    #[test]
    fn engine_line_reports_the_resolved_engine() {
        let run_with = |flags: &str| {
            let opts =
                parse_args(&args(&format!("--answer 2 --metrics --shots 32 {flags}"))).unwrap();
            run(BV_QASM, &opts).unwrap()
        };
        // Explicit engines report themselves; the eligible auto run resolves
        // to prefix; a fault plan forces per-shot; no flag, no line.
        assert!(run_with("--engine prefix").contains("// engine: prefix"));
        assert!(run_with("--engine shots").contains("// engine: shots"));
        assert!(run_with("--engine auto").contains("// engine: prefix"));
        assert!(run_with("--engine auto --inject meas-flip=0.1").contains("// engine: shots"));
        assert!(run_with("--engine auto --max-failed 3").contains("// engine: shots"));
        assert!(!run_with("").contains("// engine:"));
    }

    #[test]
    fn engine_choice_does_not_change_the_counts() {
        let counters = |engine: &str| {
            let opts = parse_args(&args(&format!(
                "--answer 2 --metrics=json --shots 128 --seed 5 --engine {engine}"
            )))
            .unwrap();
            let out = run(BV_QASM, &opts).unwrap();
            let start = out.find("\"counters\"").unwrap();
            let end = out.find("\"gauges\"").unwrap();
            // The prefix run adds prefix.* tree counters; every shared
            // counter (executor.*, transform.*, ...) must agree exactly.
            // Counter values are scalars, so the section splits on commas.
            out[start..end]
                .split(',')
                .filter(|kv| !kv.contains("\"prefix."))
                .collect::<Vec<_>>()
                .join(",")
        };
        assert_eq!(counters("shots"), counters("prefix"));
    }

    #[test]
    fn trace_and_metrics_out_flags_parse_all_forms() {
        let o = parse_args(&args(
            "--answer 2 --trace out.json --trace-clock test --metrics-out m.json",
        ))
        .unwrap();
        assert_eq!(o.trace.as_deref(), Some("out.json"));
        assert_eq!(o.trace_clock, ClockMode::Test);
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        // `=` forms and the stdout sentinel.
        let eq = parse_args(&args("--answer 2 --trace=- --trace-clock=wall")).unwrap();
        assert_eq!(eq.trace.as_deref(), Some("-"));
        assert_eq!(eq.trace_clock, ClockMode::Wall);
        let err = parse_args(&args("--answer 2 --trace-clock sundial")).unwrap_err();
        assert!(err.contains("expected 'wall' or 'test'"), "{err}");
        // The default clock is wall.
        assert_eq!(
            parse_args(&args("--answer 2")).unwrap().trace_clock,
            ClockMode::Wall
        );
    }

    #[test]
    fn stdout_can_only_be_claimed_once() {
        let err = parse_args(&args("--answer 2 --metrics=json --trace -")).unwrap_err();
        assert!(err.contains("at most one"), "{err}");
        let err = parse_args(&args("--answer 2 --metrics-out - --trace=-")).unwrap_err();
        assert!(err.contains("at most one"), "{err}");
        // One claimant plus file sinks is fine.
        assert!(parse_args(&args("--answer 2 --metrics=json --trace t.json")).is_ok());
    }

    #[test]
    fn inject_is_satisfied_by_any_instrumented_mode() {
        assert!(parse_args(&args("--answer 2 --trace=- --inject meas-flip=0.1")).is_ok());
        assert!(parse_args(&args(
            "--answer 2 --metrics-out m.json --inject meas-flip=0.1"
        ))
        .is_ok());
    }

    #[test]
    fn trace_to_stdout_is_one_chrome_trace_document() {
        let opts = parse_args(&args(
            "--answer 2 --trace - --trace-clock test --shots 16 --seed 3",
        ))
        .unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        qobs::json::validate(&out).expect("trace must be valid JSON");
        assert!(out.trim_start().starts_with('['), "{out}");
        assert!(!out.contains("OPENQASM"), "trace replaces the QASM: {out}");
        for needle in [
            "\"pipeline.transform\"",
            "\"shot\"",
            "\"measure\"",
            "\"executor.run_resilient\"",
            "\"executor.run_end\"",
        ] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
    }

    #[test]
    fn trace_file_is_byte_identical_across_thread_counts() {
        let dir = std::env::temp_dir();
        let trace_for = |threads: u32| {
            let path = dir.join(format!("dqct_trace_{}_{threads}.json", std::process::id()));
            let opts = parse_args(&args(&format!(
                "--answer 2 --trace {} --trace-clock test --shots 64 --seed 9 \
                 --threads {threads} --verify",
                path.display()
            )))
            .unwrap();
            let out = run(BV_QASM, &opts).unwrap();
            // QASM still owns stdout when the trace goes to a file, with a
            // compact summary appended as comments.
            assert!(out.contains("OPENQASM"), "{out}");
            assert!(out.contains("// "), "{out}");
            let doc = std::fs::read_to_string(&path).expect("trace file written");
            let _ = std::fs::remove_file(&path);
            doc
        };
        let one = trace_for(1);
        qobs::json::validate(&one).expect("trace must be valid JSON");
        assert!(one.contains("\"pipeline.verify\""), "{one}");
        assert_eq!(
            trace_for(8),
            one,
            "test-clock traces must not depend on --threads"
        );
    }

    #[test]
    fn metrics_out_writes_the_document_beside_the_qasm() {
        let path = std::env::temp_dir().join(format!("dqct_metrics_{}.json", std::process::id()));
        let opts = parse_args(&args(&format!(
            "--answer 2 --metrics-out {} --shots 32 --seed 3",
            path.display()
        )))
        .unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        assert!(out.contains("OPENQASM"), "QASM stays on stdout: {out}");
        let doc = std::fs::read_to_string(&path).expect("metrics file written");
        let _ = std::fs::remove_file(&path);
        qobs::json::validate(&doc).expect("metrics must be valid JSON");
        assert!(doc.contains("\"executor.shots\":32"), "{doc}");
    }

    #[test]
    fn metrics_out_stdout_matches_the_deprecated_alias() {
        let new = parse_args(&args("--answer 2 --metrics-out - --shots 32 --seed 3")).unwrap();
        let old = parse_args(&args("--answer 2 --metrics=json --shots 32 --seed 3")).unwrap();
        let (a, b) = (run(BV_QASM, &new).unwrap(), run(BV_QASM, &old).unwrap());
        let counters = |s: &str| {
            let start = s.find("\"counters\"").unwrap();
            let end = s.find("\"gauges\"").unwrap();
            s[start..end].to_string()
        };
        assert_eq!(counters(&a), counters(&b));
        assert!(!a.contains("OPENQASM"), "{a}");
    }

    #[test]
    fn mitigated_run_emits_widened_qasm_and_run_report() {
        let opts = parse_args(&args(
            "--answer 2 --metrics --shots 32 --mitigate=reset-verify,meas-repeat=3",
        ))
        .unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        // 2 original bits + 2 ballots per measurement + 1 verify bit per reset.
        assert!(out.contains("// run: completed=32"), "{out}");
        assert!(out.contains("// mitigate: votes_flipped="), "{out}");
        assert!(!out.contains("bit[2] c;"), "register must widen: {out}");
        assert!(
            from_qasm(&out).is_ok(),
            "mitigated QASM must stay parseable"
        );
    }

    #[test]
    fn mitigated_counts_are_thread_count_invariant() {
        let counters = |threads: &str| {
            let opts = parse_args(&args(&format!(
                "--answer 2 --metrics=json --shots 128 --seed 5 --threads {threads} \
                 --noise 1.0 --mitigate=meas-repeat=3"
            )))
            .unwrap();
            let out = run(BV_QASM, &opts).unwrap();
            let start = out.find("\"counters\"").unwrap();
            let end = out.find("\"gauges\"").unwrap();
            out[start..end].to_string()
        };
        assert_eq!(counters("1"), counters("8"));
    }

    #[test]
    fn readout_cal_reports_corrected_argmax() {
        let opts = parse_args(&args(
            "--answer 2 --metrics --shots 64 --noise 1.0 --mitigate=readout-cal",
        ))
        .unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        assert!(out.contains("// readout-cal: argmax"), "{out}");
    }

    #[test]
    fn run_transforms_bv_and_emits_qasm() {
        let opts = parse_args(&args("--answer 2 --verify --stats")).unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        assert!(out.contains("qubit[2] q;"), "{out}");
        assert!(out.contains("reset q[0];"));
        assert!(out.contains("// verify: tvd = 0.000000"));
        assert!(out.contains("// dynamic:"));
    }

    #[test]
    fn run_defaults_unlisted_qubits_to_data() {
        let opts = parse_args(&args("--answer 2")).unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        // 2 data iterations -> 2 classical bits.
        assert!(out.contains("bit[2] c;"), "{out}");
    }

    #[test]
    fn run_reports_qasm_errors() {
        let opts = parse_args(&args("--answer 2")).unwrap();
        let err = run("qubit[1] q;\nwarble q[0];\n", &opts).unwrap_err();
        assert!(err.contains("unsupported gate"));
    }

    #[test]
    fn run_reports_transform_errors() {
        let opts = parse_args(&args("--answer 2")).unwrap();
        let cyclic = "qubit[3] q;\ncx q[0], q[1];\ncx q[1], q[0];\n";
        let err = run(cyclic, &opts).unwrap_err();
        assert!(err.contains("cyclic"));
    }

    #[test]
    fn ascii_mode_prefixes_comments() {
        let opts = parse_args(&args("--answer 2 --ascii")).unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        assert!(out.contains("// traditional:"));
        assert!(out.lines().filter(|l| l.starts_with("// ")).count() > 4);
    }

    #[test]
    fn output_round_trips_through_the_parser() {
        let opts = parse_args(&args("--answer 2")).unwrap();
        let out = run(BV_QASM, &opts).unwrap();
        assert!(from_qasm(&out).is_ok());
    }
}
