//! Failure-injection tests for the `dqct` binary.
//!
//! Every malformed invocation must exit nonzero with a one-line (or at least
//! human-readable) message on stderr — never a panic backtrace, never a
//! success status with garbage output.

use std::io::Write as _;
use std::process::{Command, Output, Stdio};

fn dqct(args: &[&str], stdin: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dqct"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dqct");
    // A child that rejects its arguments may exit before reading stdin;
    // the resulting broken pipe is fine.
    let _ = child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin.as_bytes());
    child.wait_with_output().expect("wait for dqct")
}

fn assert_clean_failure(out: &Output, expect_in_stderr: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "expected nonzero exit, stderr: {stderr}"
    );
    assert!(
        stderr.contains(expect_in_stderr),
        "stderr missing '{expect_in_stderr}': {stderr}"
    );
    assert!(
        !stderr.contains("panicked at") && !stderr.contains("RUST_BACKTRACE"),
        "CLI failure leaked a panic: {stderr}"
    );
}

const GOOD_QASM: &str = "qubit[3] q;\nh q[0];\ncx q[0], q[2];\nh q[0];\n";

#[test]
fn unknown_flag_fails_cleanly() {
    let out = dqct(&["--answer", "2", "--frobnicate"], GOOD_QASM);
    assert_clean_failure(&out, "unknown argument '--frobnicate'");
}

#[test]
fn missing_answer_fails_cleanly() {
    let out = dqct(&[], GOOD_QASM);
    assert_clean_failure(&out, "--answer is required");
}

#[test]
fn unreadable_input_file_fails_cleanly() {
    let out = dqct(
        &["--answer", "2", "--input", "/nonexistent/circuit.qasm"],
        "",
    );
    assert_clean_failure(&out, "cannot read /nonexistent/circuit.qasm");
}

#[test]
fn malformed_qasm_fails_cleanly() {
    let out = dqct(&["--answer", "2"], "qubit[1] q;\nwarble q[0];\n");
    assert_clean_failure(&out, "unsupported gate");
}

#[test]
fn bad_mitigate_spec_fails_cleanly() {
    let out = dqct(&["--answer", "2", "--mitigate=meas-repeat=4"], GOOD_QASM);
    assert_clean_failure(&out, "--mitigate: meas-repeat must be an odd count");
    let out = dqct(&["--answer", "2", "--mitigate=warp-core"], GOOD_QASM);
    assert_clean_failure(&out, "unknown mitigation pass 'warp-core'");
}

#[test]
fn bad_resilience_flags_fail_cleanly() {
    let out = dqct(&["--answer", "2", "--noise", "-0.5"], GOOD_QASM);
    assert_clean_failure(&out, "--noise");
    let out = dqct(&["--answer", "2", "--deadline-ms", "0"], GOOD_QASM);
    assert_clean_failure(&out, "--deadline-ms must be at least 1");
    let out = dqct(&["--answer", "2", "--max-failed", "lots"], GOOD_QASM);
    assert_clean_failure(&out, "--max-failed");
}

#[test]
fn mitigated_metrics_run_succeeds_end_to_end() {
    let out = dqct(
        &[
            "--answer",
            "2",
            "--metrics",
            "--shots",
            "32",
            "--noise",
            "1.0",
            "--mitigate=reset-verify,meas-repeat=3",
            "--deadline-ms",
            "60000",
            "--max-failed",
            "10",
        ],
        GOOD_QASM,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(stdout.contains("// run: completed=32"), "{stdout}");
    assert!(stdout.contains("// mitigate: votes_flipped="), "{stdout}");
    assert!(stdout.contains("OPENQASM"), "{stdout}");
}
