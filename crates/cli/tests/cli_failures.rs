//! Failure-injection tests for the `dqct` binary.
//!
//! Every malformed invocation must exit nonzero with a one-line (or at least
//! human-readable) message on stderr — never a panic backtrace, never a
//! success status with garbage output.

use std::io::Write as _;
use std::process::{Command, Output, Stdio};

fn dqct(args: &[&str], stdin: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dqct"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dqct");
    // A child that rejects its arguments may exit before reading stdin;
    // the resulting broken pipe is fine.
    let _ = child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin.as_bytes());
    child.wait_with_output().expect("wait for dqct")
}

fn assert_clean_failure(out: &Output, expect_in_stderr: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "expected nonzero exit, stderr: {stderr}"
    );
    assert!(
        stderr.contains(expect_in_stderr),
        "stderr missing '{expect_in_stderr}': {stderr}"
    );
    assert!(
        !stderr.contains("panicked at") && !stderr.contains("RUST_BACKTRACE"),
        "CLI failure leaked a panic: {stderr}"
    );
}

const GOOD_QASM: &str = "qubit[3] q;\nh q[0];\ncx q[0], q[2];\nh q[0];\n";

#[test]
fn unknown_flag_fails_cleanly() {
    let out = dqct(&["--answer", "2", "--frobnicate"], GOOD_QASM);
    assert_clean_failure(&out, "unknown argument '--frobnicate'");
}

#[test]
fn missing_answer_fails_cleanly() {
    let out = dqct(&[], GOOD_QASM);
    assert_clean_failure(&out, "--answer is required");
}

#[test]
fn unreadable_input_file_fails_cleanly() {
    let out = dqct(
        &["--answer", "2", "--input", "/nonexistent/circuit.qasm"],
        "",
    );
    assert_clean_failure(&out, "cannot read /nonexistent/circuit.qasm");
}

#[test]
fn malformed_qasm_fails_cleanly() {
    let out = dqct(&["--answer", "2"], "qubit[1] q;\nwarble q[0];\n");
    assert_clean_failure(&out, "unsupported gate");
}

#[test]
fn bad_mitigate_spec_fails_cleanly() {
    let out = dqct(&["--answer", "2", "--mitigate=meas-repeat=4"], GOOD_QASM);
    assert_clean_failure(&out, "--mitigate: meas-repeat must be an odd count");
    let out = dqct(&["--answer", "2", "--mitigate=warp-core"], GOOD_QASM);
    assert_clean_failure(&out, "unknown mitigation pass 'warp-core'");
}

#[test]
fn bad_resilience_flags_fail_cleanly() {
    let out = dqct(&["--answer", "2", "--noise", "-0.5"], GOOD_QASM);
    assert_clean_failure(&out, "--noise");
    let out = dqct(&["--answer", "2", "--deadline-ms", "soon"], GOOD_QASM);
    assert_clean_failure(&out, "--deadline-ms");
    let out = dqct(&["--answer", "2", "--max-failed", "lots"], GOOD_QASM);
    assert_clean_failure(&out, "--max-failed");
}

#[test]
fn bad_inject_specs_fail_cleanly() {
    let out = dqct(
        &["--answer", "2", "--metrics", "--inject", "warp-core=0.5"],
        GOOD_QASM,
    );
    assert_clean_failure(&out, "bad fault spec token 'warp-core=0.5'");
    let out = dqct(
        &["--answer", "2", "--metrics", "--inject", "meas-flip=1.5"],
        GOOD_QASM,
    );
    assert_clean_failure(&out, "--inject");
    // --inject without --metrics is rejected up front.
    let out = dqct(&["--answer", "2", "--inject", "meas-flip=0.1"], GOOD_QASM);
    assert_clean_failure(&out, "--inject needs --metrics");
}

#[test]
fn garbled_qasm_fails_cleanly_instead_of_panicking() {
    // Each of these used to panic inside the parser or the circuit
    // constructors; they must now be one-line typed errors.
    let cases: [(&str, &str); 5] = [
        ("qubit[2] q;\ncx q[0];\n", "takes 2 qubit(s), got 1"),
        ("qubit[2] q;\ncx q[0], q[0];\n", "duplicate qubit operand"),
        (
            "qubit[2] q;\nbit[1] c;\nif (c[0] == 1) { barrier q[0], q[1]; }\n",
            "barrier cannot be conditioned",
        ),
        ("qubit[2] q;\nctrl(0) @ x q[0], q[1];\n", "ctrl count"),
        (
            "qubit[99999999] q;\nh q[0];\n",
            "exceeds the supported maximum",
        ),
    ];
    for (qasm, expect) in cases {
        let out = dqct(&["--answer", "1"], qasm);
        assert_clean_failure(&out, expect);
    }
}

#[test]
fn chaos_metrics_run_succeeds_end_to_end() {
    let out = dqct(
        &[
            "--answer",
            "2",
            "--metrics",
            "--shots",
            "64",
            "--seed",
            "11",
            "--inject",
            "seed=5,meas-flip=0.2,panic=0.05",
            "--max-failed",
            "64",
        ],
        GOOD_QASM,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(stdout.contains("// run: completed="), "{stdout}");
    assert!(stdout.contains("fault.injected.meas-flip"), "{stdout}");
    // Injected panics are caught and counted, not spewed to stderr.
    assert!(
        !stderr.contains("panicked at"),
        "injected panics leaked to stderr: {stderr}"
    );
}

#[test]
fn mitigated_metrics_run_succeeds_end_to_end() {
    let out = dqct(
        &[
            "--answer",
            "2",
            "--metrics",
            "--shots",
            "32",
            "--noise",
            "1.0",
            "--mitigate=reset-verify,meas-repeat=3",
            "--deadline-ms",
            "60000",
            "--max-failed",
            "10",
        ],
        GOOD_QASM,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(stdout.contains("// run: completed=32"), "{stdout}");
    assert!(stdout.contains("// mitigate: votes_flipped="), "{stdout}");
    assert!(stdout.contains("OPENQASM"), "{stdout}");
}
