//! Edge-of-budget chaos drills against the real shot executor.
//!
//! Every [`Termination`] variant must be reachable through fault injection
//! alone, exhausted budgets must degrade to empty-but-valid [`Counts`]
//! instead of panicking, and injected faults must leave both the counts and
//! the fault counters bit-identical across worker-thread counts.

use qcir::{Circuit, Clbit, Condition, Gate, Qubit};
use qfault::{FaultPlan, FaultSite};
use qobs::Observer;
use qsim::{Counts, DriftPolicy, Executor, RunReport, Termination};
use std::sync::Arc;
use std::time::Duration;

fn q(i: usize) -> Qubit {
    Qubit::new(i)
}

fn c(i: usize) -> Clbit {
    Clbit::new(i)
}

/// A small dynamic circuit: Bell-ish pair measured mid-circuit, with a
/// conditioned correction — exercises gates, measure, reset and cc paths.
fn probe_circuit() -> Circuit {
    let mut circ = Circuit::new(2, 2);
    circ.h(q(0));
    circ.measure(q(0), c(0));
    circ.gate_if(Gate::X, &[q(1)], Condition::bit(c(0)));
    circ.reset(q(0));
    circ.measure(q(1), c(1));
    circ
}

fn run_with(
    plan: FaultPlan,
    threads: usize,
    shots: u64,
    configure: impl Fn(Executor) -> Executor,
) -> (Counts, RunReport) {
    let exec = configure(
        Executor::new()
            .shots(shots)
            .seed(41)
            .threads(threads)
            .fault_hook(Arc::new(plan)),
    );
    exec.run_resilient(&probe_circuit())
}

#[test]
fn all_shots_faulted_yields_empty_but_valid_counts() {
    let plan = FaultPlan::new(7).with_rate(FaultSite::ShotPanic, 1.0);
    for threads in [1, 8] {
        let (counts, report) = run_with(plan.clone(), threads, 32, |e| e);
        assert_eq!(counts.total(), 0, "threads={threads}");
        assert!(counts.is_empty(), "threads={threads}");
        assert_eq!(report.completed, 0, "threads={threads}");
        assert_eq!(report.failed, 32, "threads={threads}");
        // No budget was set, so the run ran to the end of the shot range.
        assert_eq!(report.termination, Termination::Completed);
    }
}

#[test]
fn max_failed_zero_trips_on_the_first_injected_panic() {
    let plan = FaultPlan::new(7).with_rate(FaultSite::ShotPanic, 1.0);
    for threads in [1, 8] {
        let (counts, report) = run_with(plan.clone(), threads, 64, |e| e.max_failed(0));
        assert_eq!(report.termination, Termination::FailedShotBudget);
        assert!(report.failed >= 1, "threads={threads}");
        // Partial counts stay internally consistent.
        assert_eq!(counts.total(), report.completed, "threads={threads}");
    }
}

#[test]
fn zero_deadline_terminates_before_any_shot() {
    let plan = FaultPlan::new(7).with_rate(FaultSite::MeasFlip, 0.5);
    for threads in [1, 8] {
        let (counts, report) = run_with(plan.clone(), threads, 64, |e| e.deadline(Duration::ZERO));
        assert_eq!(report.termination, Termination::Deadline);
        assert_eq!(counts.total(), 0, "threads={threads}");
        assert_eq!(report.completed, 0, "threads={threads}");
        assert_eq!(report.failed, 0, "threads={threads}");
    }
}

#[test]
fn injected_delay_trips_a_short_deadline() {
    let plan = FaultPlan::new(7)
        .with_rate(FaultSite::ShotDelay, 1.0)
        .with_delay(Duration::from_millis(5));
    let (counts, report) = run_with(plan, 1, 10_000, |e| e.deadline(Duration::from_millis(25)));
    assert_eq!(report.termination, Termination::Deadline);
    assert!(report.completed < 10_000, "deadline must cut the run short");
    assert_eq!(counts.total(), report.completed);
}

#[test]
fn injected_condition_corruption_reaches_abort() {
    // Ideal run: c0 is never set, so the NaN-angle rotation stays dormant.
    // A certain cc-flip fires the branch, the norm collapses to NaN, and
    // `DriftPolicy::Abort` must surface as `Termination::Aborted`.
    let mut circ = Circuit::new(1, 1);
    circ.gate_if(Gate::Rx(f64::NAN), &[q(0)], Condition::bit(c(0)));
    circ.measure(q(0), c(0));
    let without_plan = Executor::new()
        .shots(8)
        .seed(41)
        .drift_policy(DriftPolicy::Abort)
        .run_resilient(&circ);
    assert_eq!(without_plan.1.termination, Termination::Completed);

    let plan = FaultPlan::new(7).with_rate(FaultSite::CcFlip, 1.0);
    for threads in [1, 8] {
        let (counts, report) = Executor::new()
            .shots(8)
            .seed(41)
            .threads(threads)
            .drift_policy(DriftPolicy::Abort)
            .fault_hook(Arc::new(plan.clone()))
            .run_resilient(&circ);
        assert_eq!(
            report.termination,
            Termination::Aborted,
            "threads={threads}"
        );
        assert_eq!(counts.total(), report.completed, "threads={threads}");
    }
}

#[test]
fn every_termination_variant_is_reachable_by_injection() {
    let mut seen = vec![
        all_termination_of(|p| p.with_rate(FaultSite::MeasFlip, 0.1), |e| e),
        all_termination_of(
            |p| p.with_rate(FaultSite::ShotPanic, 1.0),
            |e| e.max_failed(0),
        ),
        all_termination_of(
            |p| p.with_rate(FaultSite::MeasFlip, 0.1),
            |e| e.deadline(Duration::ZERO),
        ),
        all_termination_of(
            |p| p.with_rate(FaultSite::CcFlip, 1.0),
            |e| e.drift_policy(DriftPolicy::Abort),
        ),
    ];
    seen.sort_by_key(|t| format!("{t}"));
    let mut expected = vec![
        Termination::Completed,
        Termination::FailedShotBudget,
        Termination::Deadline,
        Termination::Aborted,
    ];
    expected.sort_by_key(|t| format!("{t}"));
    assert_eq!(seen, expected);
}

fn all_termination_of(
    build: impl Fn(FaultPlan) -> FaultPlan,
    configure: impl Fn(Executor) -> Executor,
) -> Termination {
    let plan = build(FaultPlan::new(7));
    let circ = if plan.rate(FaultSite::CcFlip) > 0.0 {
        let mut circ = Circuit::new(1, 1);
        circ.gate_if(Gate::Rx(f64::NAN), &[q(0)], Condition::bit(c(0)));
        circ.measure(q(0), c(0));
        circ
    } else {
        probe_circuit()
    };
    let exec = configure(
        Executor::new()
            .shots(16)
            .seed(41)
            .fault_hook(Arc::new(plan)),
    );
    exec.run_resilient(&circ).1.termination
}

#[test]
fn counts_and_fault_counters_are_thread_invariant_under_a_full_plan() {
    // Every site except delay (which only costs wall-clock time) at a
    // meaningful rate; no budgets, so the failed set is thread-invariant too.
    let plan = FaultPlan::parse(
        "seed=5,reset-leak=0.2,meas-flip=0.2,cc-flip=0.1,cc-loss=0.1,\
         gate-drop=0.1,gate-dup=0.1,panic=0.05",
    )
    .expect("spec parses");
    let run = |threads: usize| {
        let obs = Observer::metrics_only();
        let exec = Executor::new()
            .shots(256)
            .seed(41)
            .threads(threads)
            .observer(obs.clone())
            .fault_hook(Arc::new(plan.clone()));
        let (counts, report) = exec.run_resilient(&probe_circuit());
        let json = obs.metrics().to_json();
        let start = json.find("\"counters\"").expect("counters section");
        let end = json.find("\"gauges\"").expect("gauges section");
        (
            counts,
            report.completed,
            report.failed,
            json[start..end].to_string(),
        )
    };
    let one = run(1);
    assert!(
        one.3.contains("\"fault.injected.meas-flip\""),
        "counters must include injections: {}",
        one.3
    );
    assert!(one.3.contains("\"fault.caught.panic\""), "{}", one.3);
    let eight = run(8);
    assert_eq!(one.0, eight.0, "counts must be bit-identical");
    assert_eq!((one.1, one.2), (eight.1, eight.2));
    assert_eq!(one.3, eight.3, "fault counters must be bit-identical");
}
