//! # qfault — deterministic, seeded fault injection for the shot executor
//!
//! A [`FaultPlan`] decides, for every `(shot, site)` pair, whether one of
//! the structured faults of [`qsim::fault`] fires: reset-leaves-`|1>`,
//! measurement bit-flips, classical-register corruption or loss before a
//! conditioned gate, gate drop/duplication, injected per-shot panics and
//! artificial per-shot latency.
//!
//! # Determinism contract
//!
//! Every decision is a **pure function of `(fault_seed, shot, site)`**,
//! derived counter-style through three chained [`rand::stream_seed`]
//! applications (seed → site lane → shot → draw) — the same SplitMix64
//! derivation the executor uses for per-shot RNG streams. No hidden state,
//! no draw ordering: chaos runs are bit-identical at every thread count and
//! prefix-stable across shot counts, and re-querying a decision (as the
//! resilient executor does to attribute caught panics) always returns the
//! same answer. Fault draws never touch the shot's own RNG stream, so a
//! plan whose rates are all zero reproduces an uninjected run bit for bit.
//!
//! # Examples
//!
//! ```
//! use qfault::FaultPlan;
//! use qsim::fault::FaultSite;
//!
//! let plan = FaultPlan::parse("seed=7,reset-leak=0.25,panic=0.01").unwrap();
//! assert_eq!(plan.seed(), 7);
//! assert_eq!(plan.rate(FaultSite::ResetLeak), 0.25);
//! // Decisions are pure: the same query always answers the same way.
//! assert_eq!(
//!     plan.fires(FaultSite::ResetLeak, 3, 0),
//!     plan.fires(FaultSite::ResetLeak, 3, 0),
//! );
//! ```

#![deny(clippy::unwrap_used)]

pub use qsim::fault::{CcFault, FaultHook, FaultSite, GateFate};

use rand::stream_seed;
use std::fmt;
use std::time::Duration;

/// Default length of an injected per-shot delay (overridable with
/// `delay-ms=N` in a spec or [`FaultPlan::with_delay`]).
const DEFAULT_DELAY: Duration = Duration::from_millis(1);

/// Draw lanes within one `(site, shot)` stream: lane 0 decides whether the
/// fault fires, lane 1 picks a target (e.g. which condition bit to corrupt).
const LANE_FIRE: u64 = 0;
const LANE_TARGET: u64 = 1;

/// Seed lane for [`FaultPlan::scoped`], chosen outside the site-index range
/// so a scoped plan's derivations never collide with the base plan's own
/// site lanes.
const JOB_SCOPE_LANE: u64 = 0x6A6F_6273; // "jobs"

/// The job-granular chaos decision of [`FaultPlan::job_fault`]: whether a
/// whole job is panic-faulted and/or latency-faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobFault {
    /// The job's shots should be made to panic.
    pub panic: bool,
    /// Each of the job's shots should stall for this long.
    pub delay: Option<Duration>,
}

impl JobFault {
    /// `true` when the job is faulted in any way.
    #[must_use]
    pub fn is_faulted(&self) -> bool {
        self.panic || self.delay.is_some()
    }
}

/// A seeded, declarative fault-injection plan; implements
/// [`qsim::fault::FaultHook`] so it plugs straight into
/// [`qsim::Executor::fault_hook`].
///
/// Each [`FaultSite`] carries an independent firing rate in `[0, 1]`; a
/// rate of 0 (the default) disables the site entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; FaultSite::ALL.len()],
    delay: Duration,
}

/// A rejected `--inject` spec, with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The token that failed to parse (empty for whole-spec problems).
    pub token: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.token.is_empty() {
            write!(f, "{}", self.reason)
        } else {
            write!(f, "bad fault spec token '{}': {}", self.token, self.reason)
        }
    }
}

impl std::error::Error for FaultSpecError {}

fn spec_error(token: &str, reason: impl Into<String>) -> FaultSpecError {
    FaultSpecError {
        token: token.to_string(),
        reason: reason.into(),
    }
}

fn site_index(site: FaultSite) -> usize {
    // Position in FaultSite::ALL; the array is tiny and the order fixed.
    FaultSite::ALL
        .iter()
        .position(|s| *s == site)
        .unwrap_or_else(|| unreachable!("site {site} missing from FaultSite::ALL"))
}

impl FaultPlan {
    /// An empty plan (every rate 0) over `seed`. Running under an empty
    /// plan is bit-identical to running with no plan at all.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [0.0; FaultSite::ALL.len()],
            delay: DEFAULT_DELAY,
        }
    }

    /// Sets the firing rate for `site`.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is not in `[0, 1]` (use [`FaultPlan::parse`] for
    /// untrusted input).
    #[must_use]
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate for {site} must be in [0, 1], got {rate}"
        );
        self.rates[site_index(site)] = rate;
        self
    }

    /// Sets the length of each injected [`FaultSite::ShotDelay`] stall.
    #[must_use]
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Parses a comma-separated spec, as taken by `dqct --inject`:
    /// `seed=N`, `delay-ms=N`, and `<site>=<rate>` entries where `<site>`
    /// is a [`FaultSite::name`] (`reset-leak`, `meas-flip`, `cc-flip`,
    /// `cc-loss`, `gate-drop`, `gate-dup`, `panic`, `delay`) and `<rate>`
    /// is in `[0, 1]`. Later entries override earlier ones.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultSpecError`] naming the offending token for empty
    /// specs, unknown keys, malformed numbers and out-of-range rates.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        if spec.trim().is_empty() {
            return Err(spec_error("", "empty fault spec"));
        }
        let mut plan = FaultPlan::new(0);
        for token in spec.split(',') {
            let token = token.trim();
            let Some((key, value)) = token.split_once('=') else {
                return Err(spec_error(token, "expected key=value"));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = value
                        .parse::<u64>()
                        .map_err(|_| spec_error(token, "seed must be a u64"))?;
                }
                "delay-ms" => {
                    let ms = value
                        .parse::<u64>()
                        .map_err(|_| spec_error(token, "delay-ms must be a u64"))?;
                    plan.delay = Duration::from_millis(ms);
                }
                _ => {
                    let Some(site) = FaultSite::parse(key) else {
                        return Err(spec_error(
                            token,
                            format!(
                                "unknown key (expected seed, delay-ms, or a site: {})",
                                FaultSite::ALL.map(FaultSite::name).join(", ")
                            ),
                        ));
                    };
                    let rate = value
                        .parse::<f64>()
                        .map_err(|_| spec_error(token, "rate must be a number"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(spec_error(token, "rate must be in [0, 1]"));
                    }
                    plan.rates[site_index(site)] = rate;
                }
            }
        }
        Ok(plan)
    }

    /// The plan's fault seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The firing rate configured for `site`.
    #[must_use]
    pub fn rate(&self, site: FaultSite) -> f64 {
        self.rates[site_index(site)]
    }

    /// The length of each injected delay.
    #[must_use]
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// `true` when every rate is zero (the plan can never fire).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rates.iter().all(|&r| r == 0.0)
    }

    /// The canonical spec string the plan round-trips through
    /// [`FaultPlan::parse`].
    #[must_use]
    pub fn spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        if self.delay != DEFAULT_DELAY {
            parts.push(format!("delay-ms={}", self.delay.as_millis()));
        }
        for site in FaultSite::ALL {
            let rate = self.rate(site);
            if rate > 0.0 {
                parts.push(format!("{}={rate}", site.name()));
            }
        }
        parts.join(",")
    }

    /// The raw 64-bit draw for `(site, shot, site_index, lane)`: three
    /// chained counter derivations, no state.
    fn word(&self, site: FaultSite, shot: u64, idx: usize, lane: u64) -> u64 {
        let site_lane = stream_seed(self.seed, site_index(site) as u64);
        let shot_lane = stream_seed(site_lane, shot);
        stream_seed(shot_lane, (idx as u64) << 1 | lane)
    }

    /// A uniform draw in `[0, 1)` for the decision lane of
    /// `(site, shot, idx)`.
    fn unit(&self, site: FaultSite, shot: u64, idx: usize) -> f64 {
        // Top 53 bits -> [0, 1), the standard double conversion.
        (self.word(site, shot, idx, LANE_FIRE) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Does the fault at `site` fire for instruction `idx` of `shot`?
    /// Pure in `(seed, site, shot, idx)`.
    #[must_use]
    pub fn fires(&self, site: FaultSite, shot: u64, idx: usize) -> bool {
        let rate = self.rates[site_index(site)];
        rate > 0.0 && self.unit(site, shot, idx) < rate
    }

    /// Deterministically picks a target in `0..n` for a firing fault.
    fn pick(&self, site: FaultSite, shot: u64, idx: usize, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.word(site, shot, idx, LANE_TARGET) % n as u64) as usize
    }

    /// Reinterprets the plan at **job** granularity: does job `job` (of a
    /// batch service that runs many independent executions under one plan)
    /// get panic-faulted and/or latency-faulted as a whole?
    ///
    /// The decision reuses the `panic` / `delay` rates with the job index
    /// in the shot position, so a plan with `panic=0.1` faults ~10% of
    /// *jobs*, purely in `(seed, job)` — a service and its chaos drill can
    /// both compute the faulted set without coordination. A plan used for
    /// job scoping should not simultaneously serve as a per-shot hook;
    /// derive the intra-job hook with [`FaultPlan::scoped`] instead.
    #[must_use]
    pub fn job_fault(&self, job: u64) -> JobFault {
        JobFault {
            panic: self.fires(FaultSite::ShotPanic, job, 0),
            delay: self
                .fires(FaultSite::ShotDelay, job, 0)
                .then_some(self.delay),
        }
    }

    /// A per-job copy of the plan: same rates and delay, seed re-derived
    /// counter-style from `(seed, job)` on a dedicated lane. Every job then
    /// sees uncorrelated fault draws even though each execution restarts
    /// its shot numbering at zero — the service analogue of the executor's
    /// per-shot stream derivation.
    #[must_use]
    pub fn scoped(&self, job: u64) -> FaultPlan {
        FaultPlan {
            seed: stream_seed(stream_seed(self.seed, JOB_SCOPE_LANE), job),
            rates: self.rates,
            delay: self.delay,
        }
    }
}

impl FaultHook for FaultPlan {
    fn shot_panic(&self, shot: u64) -> bool {
        self.fires(FaultSite::ShotPanic, shot, 0)
    }

    fn shot_delay(&self, shot: u64) -> Option<Duration> {
        self.fires(FaultSite::ShotDelay, shot, 0)
            .then_some(self.delay)
    }

    fn gate_fate(&self, shot: u64, site: usize) -> GateFate {
        // Drop wins over duplicate when both fire for the same gate.
        if self.fires(FaultSite::GateDrop, shot, site) {
            GateFate::Drop
        } else if self.fires(FaultSite::GateDup, shot, site) {
            GateFate::Duplicate
        } else {
            GateFate::Execute
        }
    }

    fn reset_leak(&self, shot: u64, site: usize) -> bool {
        self.fires(FaultSite::ResetLeak, shot, site)
    }

    fn measure_flip(&self, shot: u64, site: usize) -> bool {
        self.fires(FaultSite::MeasFlip, shot, site)
    }

    fn condition_fault(&self, shot: u64, site: usize, num_bits: usize) -> Option<CcFault> {
        if num_bits == 0 {
            return None;
        }
        // Flip wins over loss when both fire for the same condition.
        if self.fires(FaultSite::CcFlip, shot, site) {
            Some(CcFault::Flip(self.pick(
                FaultSite::CcFlip,
                shot,
                site,
                num_bits,
            )))
        } else if self.fires(FaultSite::CcLoss, shot, site) {
            Some(CcFault::Lose(self.pick(
                FaultSite::CcLoss,
                shot,
                site,
                num_bits,
            )))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec_round_trips() {
        let plan = FaultPlan::parse("seed=42,delay-ms=5,reset-leak=0.25,meas-flip=0.1,panic=0.01")
            .expect("valid spec");
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.delay(), Duration::from_millis(5));
        assert_eq!(plan.rate(FaultSite::ResetLeak), 0.25);
        assert_eq!(plan.rate(FaultSite::MeasFlip), 0.1);
        assert_eq!(plan.rate(FaultSite::ShotPanic), 0.01);
        assert_eq!(plan.rate(FaultSite::GateDrop), 0.0);
        let reparsed = FaultPlan::parse(&plan.spec()).expect("canonical spec");
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for (spec, why) in [
            ("", "empty"),
            ("  ", "empty"),
            ("reset-leak", "missing ="),
            ("bogus=0.5", "unknown key"),
            ("reset-leak=nope", "bad number"),
            ("reset-leak=1.5", "rate above 1"),
            ("reset-leak=-0.1", "rate below 0"),
            ("seed=abc", "bad seed"),
            ("delay-ms=-3", "bad delay"),
            ("seed=1,,panic=0.1", "empty token"),
        ] {
            assert!(FaultPlan::parse(spec).is_err(), "{why}: {spec:?}");
        }
    }

    #[test]
    fn error_display_names_the_token() {
        let err = FaultPlan::parse("seed=1,bogus=0.5").expect_err("unknown key");
        let msg = err.to_string();
        assert!(msg.contains("bogus=0.5"), "{msg}");
    }

    #[test]
    fn decisions_are_pure_and_instance_independent() {
        let a = FaultPlan::new(7).with_rate(FaultSite::MeasFlip, 0.3);
        let b = FaultPlan::parse("seed=7,meas-flip=0.3").expect("spec");
        for shot in 0..200 {
            for idx in 0..5 {
                let fire = a.fires(FaultSite::MeasFlip, shot, idx);
                assert_eq!(fire, a.fires(FaultSite::MeasFlip, shot, idx));
                assert_eq!(fire, b.fires(FaultSite::MeasFlip, shot, idx));
            }
        }
    }

    #[test]
    fn rate_zero_never_fires_and_rate_one_always_fires() {
        let plan = FaultPlan::new(3)
            .with_rate(FaultSite::ResetLeak, 1.0)
            .with_rate(FaultSite::GateDrop, 0.0);
        for shot in 0..100 {
            assert!(plan.fires(FaultSite::ResetLeak, shot, 2));
            assert!(!plan.fires(FaultSite::GateDrop, shot, 2));
        }
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let plan = FaultPlan::new(11).with_rate(FaultSite::MeasFlip, 0.2);
        let fired = (0..10_000)
            .filter(|&s| plan.fires(FaultSite::MeasFlip, s, 0))
            .count();
        let rate = fired as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn sites_are_decorrelated() {
        // The same (shot, idx) must not fire all sites in lockstep: each
        // site draws from its own lane of the seed.
        let mut plan = FaultPlan::new(5);
        for site in FaultSite::ALL {
            plan = plan.with_rate(site, 0.5);
        }
        let mut agree = 0u32;
        let trials = 2_000;
        for shot in 0..trials {
            let a = plan.fires(FaultSite::ResetLeak, shot, 0);
            let b = plan.fires(FaultSite::MeasFlip, shot, 0);
            agree += u32::from(a == b);
        }
        let frac = f64::from(agree) / f64::from(trials as u32);
        assert!((frac - 0.5).abs() < 0.05, "agreement {frac}");
    }

    #[test]
    fn cc_fault_picks_in_range_and_flip_beats_loss() {
        let plan = FaultPlan::new(9)
            .with_rate(FaultSite::CcFlip, 1.0)
            .with_rate(FaultSite::CcLoss, 1.0);
        for shot in 0..50 {
            match plan.condition_fault(shot, 4, 3) {
                Some(CcFault::Flip(k)) => assert!(k < 3),
                other => panic!("expected a flip, got {other:?}"),
            }
        }
        assert_eq!(plan.condition_fault(0, 4, 0), None, "no bits, no fault");
    }

    #[test]
    fn job_scoping_is_pure_and_tracks_rates() {
        let plan = FaultPlan::parse("seed=13,panic=0.1,delay=0.1,delay-ms=20").expect("spec");
        let mut panicked = 0u32;
        let mut delayed = 0u32;
        for job in 0..5_000 {
            let fault = plan.job_fault(job);
            assert_eq!(fault, plan.job_fault(job), "job decisions must be pure");
            panicked += u32::from(fault.panic);
            delayed += u32::from(fault.delay.is_some());
            if let Some(d) = fault.delay {
                assert_eq!(d, Duration::from_millis(20));
            }
        }
        let p = f64::from(panicked) / 5_000.0;
        let d = f64::from(delayed) / 5_000.0;
        assert!((p - 0.1).abs() < 0.02, "panic job rate {p}");
        assert!((d - 0.1).abs() < 0.02, "delay job rate {d}");
    }

    #[test]
    fn scoped_plans_decorrelate_jobs_but_keep_rates() {
        let plan = FaultPlan::parse("seed=21,meas-flip=0.5,delay-ms=3").expect("spec");
        let a = plan.scoped(0);
        let b = plan.scoped(1);
        assert_eq!(a.rate(FaultSite::MeasFlip), 0.5);
        assert_eq!(a.delay(), Duration::from_millis(3));
        assert_ne!(a.seed(), b.seed());
        assert_ne!(a.seed(), plan.seed());
        // Same shot numbering, different draws: the scoped seeds put every
        // job on its own stream.
        let agree = (0..2_000)
            .filter(|&s| a.fires(FaultSite::MeasFlip, s, 0) == b.fires(FaultSite::MeasFlip, s, 0))
            .count();
        let frac = agree as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "scoped agreement {frac}");
        // And scoping is itself pure.
        assert_eq!(plan.scoped(7), plan.scoped(7));
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new(1).is_empty());
        assert!(!FaultPlan::new(1)
            .with_rate(FaultSite::ShotPanic, 0.1)
            .is_empty());
    }
}
