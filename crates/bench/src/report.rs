//! Plain-text and CSV table rendering for the benchmark binaries.

use std::fmt::Write as _;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use bench::report::Table;
/// let mut t = Table::new(vec!["name", "value"]);
/// t.row(vec!["alpha".into(), "1".into()]);
/// let text = t.render();
/// assert!(text.contains("alpha"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<&str>) -> Self {
        Self {
            header: header.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns (first column left, rest right).
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}", w = width[i]);
                } else {
                    let _ = write!(out, "{cell:>w$}", w = width[i]);
                }
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Renders as CSV (no quoting; cells in this workspace are plain).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(&self.rows) {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders a machine-readable metrics section for appending to a report:
/// a `=== metrics (json) ===` delimiter line followed by the registry's
/// single-line JSON document, so downstream tooling can split on the
/// delimiter and parse everything after it.
#[must_use]
pub fn metrics_section(metrics: &qobs::MetricsRegistry) -> String {
    format!("=== metrics (json) ===\n{}\n", metrics.to_json())
}

/// Formats a probability with 4 decimals.
#[must_use]
pub fn fmt_prob(p: f64) -> String {
    format!("{p:.4}")
}

/// Formats a ratio with 2 decimals and an `x` suffix.
#[must_use]
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["benchmark", "gates"]);
        t.row(vec!["AND".into(), "21".into()]);
        t.row(vec!["CARRY".into(), "53".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("benchmark"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned to the same column.
        assert_eq!(
            lines[2].find("21").map(|p| p + 2),
            lines[3].find("53").map(|p| p + 2)
        );
    }

    #[test]
    fn csv_joins_cells() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn metrics_section_is_delimited_and_parseable() {
        let obs = qobs::Observer::metrics_only();
        obs.counter_add("executor.shots", 42);
        let section = metrics_section(obs.metrics());
        let mut lines = section.lines();
        assert_eq!(lines.next(), Some("=== metrics (json) ==="));
        let json = lines.next().unwrap();
        qobs::json::validate(json).expect("valid JSON");
        assert!(json.contains("\"executor.shots\":42"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_prob(0.25), "0.2500");
        assert_eq!(fmt_ratio(2.5), "2.50x");
    }

    #[test]
    fn emptiness() {
        let t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
