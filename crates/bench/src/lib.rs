//! # bench — benchmark harness regenerating the paper's tables and figures
//!
//! Binaries:
//!
//! * `table1` — Table I (Toffoli-free circuits: qubits/gates/depth + exact
//!   equivalence check)
//! * `table2` — Table II (Toffoli-based DJ circuits, dynamic-1 vs dynamic-2)
//! * `fig7` — Fig. 7 (probability of the expected outcome, exact and at
//!   1024 shots)
//! * `noise_sweep` — accuracy under a device-like noise model (ablation)
//! * `mct_sweep` — multi-control Toffoli networks (the paper's future work)
//!
//! Run e.g. `cargo run -p bench --bin table1 -- --csv`.
//!
//! Shot-based binaries additionally accept `--threads N` (worker count for
//! the parallel shot executor; seeded results are bit-identical for every
//! value) — see [`args`].

pub mod args;
pub mod paper;
pub mod report;
pub mod runners;
