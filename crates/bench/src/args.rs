//! Tiny shared argv helpers for the benchmark binaries.
//!
//! The binaries deliberately avoid a CLI-parsing dependency; these helpers
//! keep the handful of common flags (`--csv`, `--metrics`, `--shots N`,
//! `--seed N`, `--threads N`) consistent across them instead of each binary
//! re-implementing the scan.

/// `true` when `name` (e.g. `"--csv"`) appears anywhere in the argv.
#[must_use]
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The value following `name` in the argv, parsed; `None` when the flag is
/// absent or its value does not parse.
#[must_use]
pub fn value<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|s| s.parse().ok())
}

/// `--shots N` with a default (the paper runs 1024).
#[must_use]
pub fn shots(default: u64) -> u64 {
    value("--shots").unwrap_or(default)
}

/// `--threads N`: the shot executor's worker count. `None` (flag absent)
/// leaves the executor on its default, `available_parallelism`; a value of
/// 0 is treated as absent. Thanks to per-shot RNG streams the choice only
/// changes wall-clock time, never the seeded counts — which is exactly what
/// `scripts/check.sh`'s determinism gate asserts.
#[must_use]
pub fn threads() -> Option<usize> {
    value::<usize>("--threads").filter(|&n| n > 0)
}

/// Applies the `--threads` flag (when present) to an executor.
#[must_use]
pub fn with_threads(exec: qsim::Executor) -> qsim::Executor {
    match threads() {
        Some(n) => exec.threads(n),
        None => exec,
    }
}

#[cfg(test)]
mod tests {
    // `std::env::args` of the test runner is not controllable, so the
    // helpers are exercised for "absent" behaviour only.
    #[test]
    fn absent_flags_fall_back() {
        assert!(!super::flag("--definitely-not-passed"));
        assert_eq!(super::shots(77), 77);
        assert_eq!(super::threads(), None);
    }
}
