//! Reference values transcribed from the paper's Tables I and II.
//!
//! Used to print side-by-side comparisons. Small constant offsets against
//! our measurements are expected — the paper's counting conventions are
//! implicit (its dynamic gate counts include resets but not measurements;
//! see `qcir::metrics` for ours) — while the *shapes* must match.

/// One row of Table I (Toffoli-free): `(traditional, dynamic)` pairs.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Qubit count (traditional, dynamic).
    pub qubits: (usize, usize),
    /// Gate count (traditional, dynamic).
    pub gates: (usize, usize),
    /// Depth (traditional, dynamic).
    pub depth: (usize, usize),
}

/// Table I as published.
pub const TABLE1: [Table1Row; 28] = [
    Table1Row {
        name: "BV_111",
        qubits: (4, 2),
        gates: (11, 13),
        depth: (6, 15),
    },
    Table1Row {
        name: "BV_110",
        qubits: (4, 2),
        gates: (8, 10),
        depth: (5, 13),
    },
    Table1Row {
        name: "BV_101",
        qubits: (4, 2),
        gates: (8, 10),
        depth: (5, 12),
    },
    Table1Row {
        name: "BV_011",
        qubits: (4, 2),
        gates: (8, 10),
        depth: (5, 12),
    },
    Table1Row {
        name: "BV_100",
        qubits: (4, 2),
        gates: (5, 7),
        depth: (4, 10),
    },
    Table1Row {
        name: "BV_010",
        qubits: (4, 2),
        gates: (5, 7),
        depth: (4, 10),
    },
    Table1Row {
        name: "BV_001",
        qubits: (4, 2),
        gates: (5, 7),
        depth: (4, 9),
    },
    Table1Row {
        name: "BV_1111",
        qubits: (5, 2),
        gates: (14, 17),
        depth: (7, 20),
    },
    Table1Row {
        name: "BV_1110",
        qubits: (5, 2),
        gates: (11, 14),
        depth: (6, 18),
    },
    Table1Row {
        name: "BV_1101",
        qubits: (5, 2),
        gates: (11, 14),
        depth: (6, 17),
    },
    Table1Row {
        name: "BV_1011",
        qubits: (5, 2),
        gates: (11, 14),
        depth: (6, 17),
    },
    Table1Row {
        name: "BV_0111",
        qubits: (5, 2),
        gates: (11, 14),
        depth: (6, 17),
    },
    Table1Row {
        name: "BV_1010",
        qubits: (5, 2),
        gates: (8, 11),
        depth: (5, 15),
    },
    Table1Row {
        name: "BV_1001",
        qubits: (5, 2),
        gates: (8, 11),
        depth: (5, 14),
    },
    Table1Row {
        name: "BV_0110",
        qubits: (5, 2),
        gates: (8, 11),
        depth: (5, 15),
    },
    Table1Row {
        name: "BV_0101",
        qubits: (5, 2),
        gates: (8, 11),
        depth: (5, 14),
    },
    Table1Row {
        name: "BV_1000",
        qubits: (5, 2),
        gates: (5, 9),
        depth: (4, 12),
    },
    Table1Row {
        name: "BV_0100",
        qubits: (5, 2),
        gates: (5, 8),
        depth: (4, 12),
    },
    Table1Row {
        name: "BV_0010",
        qubits: (5, 2),
        gates: (5, 8),
        depth: (4, 12),
    },
    Table1Row {
        name: "BV_0001",
        qubits: (5, 2),
        gates: (5, 8),
        depth: (4, 11),
    },
    Table1Row {
        name: "DJ_CONST_0",
        qubits: (3, 2),
        gates: (6, 7),
        depth: (3, 7),
    },
    Table1Row {
        name: "DJ_CONST_1",
        qubits: (3, 2),
        gates: (7, 8),
        depth: (3, 7),
    },
    Table1Row {
        name: "DJ_PASS_1",
        qubits: (3, 2),
        gates: (7, 8),
        depth: (5, 9),
    },
    Table1Row {
        name: "DJ_PASS_2",
        qubits: (3, 2),
        gates: (7, 8),
        depth: (5, 8),
    },
    Table1Row {
        name: "DJ_INVERT_1",
        qubits: (3, 2),
        gates: (8, 9),
        depth: (6, 10),
    },
    Table1Row {
        name: "DJ_INVERT_2",
        qubits: (3, 2),
        gates: (8, 9),
        depth: (6, 8),
    },
    Table1Row {
        name: "DJ_XOR",
        qubits: (3, 2),
        gates: (8, 9),
        depth: (6, 10),
    },
    Table1Row {
        name: "DJ_XNOR",
        qubits: (3, 2),
        gates: (9, 10),
        depth: (7, 11),
    },
];

/// One row of Table II (Toffoli-based): `(traditional, dynamic-1,
/// dynamic-2)` triples.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Qubit count (traditional, dynamic).
    pub qubits: (usize, usize),
    /// Gate count (traditional, dynamic-1, dynamic-2).
    pub gates: (usize, usize, usize),
    /// Depth (traditional, dynamic-1, dynamic-2).
    pub depth: (usize, usize, usize),
}

/// Table II as published.
pub const TABLE2: [Table2Row; 9] = [
    Table2Row {
        name: "AND",
        qubits: (3, 2),
        gates: (21, 28, 33),
        depth: (16, 23, 26),
    },
    Table2Row {
        name: "NAND",
        qubits: (3, 2),
        gates: (22, 29, 34),
        depth: (17, 24, 27),
    },
    Table2Row {
        name: "OR",
        qubits: (3, 2),
        gates: (23, 30, 35),
        depth: (18, 26, 29),
    },
    Table2Row {
        name: "NOR",
        qubits: (3, 2),
        gates: (24, 31, 36),
        depth: (19, 27, 30),
    },
    Table2Row {
        name: "IMPLY_1",
        qubits: (3, 2),
        gates: (23, 30, 35),
        depth: (18, 26, 29),
    },
    Table2Row {
        name: "IMPLY_2",
        qubits: (3, 2),
        gates: (23, 30, 35),
        depth: (18, 25, 28),
    },
    Table2Row {
        name: "INHIB_1",
        qubits: (3, 2),
        gates: (22, 29, 34),
        depth: (17, 24, 27),
    },
    Table2Row {
        name: "INHIB_2",
        qubits: (3, 2),
        gates: (22, 29, 34),
        depth: (17, 25, 28),
    },
    Table2Row {
        name: "CARRY",
        qubits: (4, 2),
        gates: (53, 73, 82),
        depth: (36, 60, 68),
    },
];

/// Looks up a Table I row by benchmark name.
#[must_use]
pub fn table1_row(name: &str) -> Option<&'static Table1Row> {
    TABLE1.iter().find(|r| r.name == name)
}

/// Looks up a Table II row by benchmark name.
#[must_use]
pub fn table2_row(name: &str) -> Option<&'static Table2Row> {
    TABLE2.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_find_rows() {
        assert_eq!(table1_row("BV_111").unwrap().gates.0, 11);
        assert_eq!(table2_row("CARRY").unwrap().gates.2, 82);
        assert!(table1_row("NOPE").is_none());
    }

    #[test]
    fn every_row_reduces_to_two_qubits() {
        for r in &TABLE1 {
            assert_eq!(r.qubits.1, 2, "{}", r.name);
        }
        for r in &TABLE2 {
            assert_eq!(r.qubits.1, 2, "{}", r.name);
        }
    }

    #[test]
    fn dynamic_is_never_cheaper_in_gates_or_depth() {
        for r in &TABLE1 {
            assert!(r.gates.1 >= r.gates.0, "{}", r.name);
            assert!(r.depth.1 >= r.depth.0, "{}", r.name);
        }
        for r in &TABLE2 {
            assert!(
                r.gates.1 >= r.gates.0 && r.gates.2 >= r.gates.1,
                "{}",
                r.name
            );
            assert!(
                r.depth.1 >= r.depth.0 && r.depth.2 >= r.depth.1,
                "{}",
                r.name
            );
        }
    }
}
