//! Shot-engine scaling on the paper's heaviest sampled circuit.
//!
//! Runs CARRY under dynamic-2 (three Toffolis, the deepest Table II entry)
//! at a fixed seed across worker counts, once per shot engine: the per-shot
//! executor that re-runs the circuit every shot, and the prefix-sharing
//! branch-tree engine that evolves the state once per stochastic branch and
//! samples shots by walking the tree. Counts are asserted bit-identical
//! across engines *and* worker counts before any timing is reported — the
//! determinism contract made observable as a benchmark.
//!
//! ```text
//! shot_scaling [--shots N] [--seed N] [--threads-list 1,2,4,8] [--csv]
//!              [--out PATH]       # write the shot_scaling/v1 JSON document
//!              [--check PATH]     # CI gate against a committed document
//! ```
//!
//! The committed `BENCH_shot_scaling.json` at the repo root is the
//! trajectory point for the prefix engine; regenerate it with
//!
//! ```text
//! cargo run --release -p bench --bin shot_scaling -- --out BENCH_shot_scaling.json
//! ```
//!
//! `--check PATH` validates the committed document structurally (schema,
//! the 4096-shot row, the recorded prefix-vs-per-shot speedup against
//! [`COMMITTED_SPEEDUP_FLOOR`]) and re-runs a quick fresh parity sweep so
//! an engine divergence fails CI even on a machine too noisy for timing
//! gates.

use bench::args;
use bench::report::Table;
use dqc::{transform_with_scheme, DynamicScheme, TransformOptions};
use qalgo::suites::toffoli_suite;
use qcir::Circuit;
use qobs::json::JsonWriter;
use qsim::{Engine, Executor};
use std::process::ExitCode;
use std::time::Instant;

/// The committed 4096-shot trajectory point must record the prefix engine
/// at least this many times faster than the per-shot executor (acceptance
/// floor of the branch-tree engine).
const COMMITTED_SPEEDUP_FLOOR: f64 = 5.0;

/// The `--check` fresh parity sweep: shots per configuration. Small enough
/// for CI, large enough to exercise every branch of the CARRY tree.
const CHECK_SHOTS: u64 = 512;

fn main() -> ExitCode {
    match real_main() {
        Ok(summary) => {
            eprintln!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shot_scaling: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<String, String> {
    let seed = args::value("--seed").unwrap_or(0xD41Eu64);
    if let Some(path) = args::value::<String>("--check") {
        return check(&path, seed);
    }
    let csv = args::flag("--csv");
    let shots = args::shots(4096);
    let threads_list: Vec<usize> = args::value::<String>("--threads-list")
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    let circuit = carry_dynamic2();
    let rows = sweep(&circuit, shots, seed, &threads_list)?;

    let mut t = Table::new(vec![
        "threads",
        "per-shot ms",
        "prefix ms",
        "prefix speedup",
        "counts identical",
    ]);
    for r in &rows {
        t.row(vec![
            r.threads.to_string(),
            format!("{:.2}", r.shots_ms),
            format!("{:.2}", r.prefix_ms),
            format!("{:.2}x", r.speedup),
            "yes".to_string(),
        ]);
    }

    if let Some(path) = args::value::<String>("--out") {
        let doc = render(&rows, shots, seed);
        std::fs::write(&path, &doc).map_err(|e| format!("cannot write '{path}': {e}"))?;
        return Ok(format!("shot_scaling: wrote {} rows to {path}", rows.len()));
    }
    println!(
        "Shot-engine scaling — CARRY dynamic-2, {shots} shots, seed {seed:#x} \
         (host has {} core(s))\n",
        host_cores()
    );
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\ncounts are asserted bit-identical across engines and worker counts");
    println!("before timing is reported; a divergence aborts the run.");
    Ok(format!("shot_scaling: {} rows", rows.len()))
}

fn carry_dynamic2() -> Circuit {
    let carry = toffoli_suite()
        .into_iter()
        .find(|b| b.name == "CARRY")
        .expect("CARRY is in the Toffoli suite");
    transform_with_scheme(
        &carry.circuit,
        &carry.roles,
        DynamicScheme::Dynamic2,
        &TransformOptions::default(),
    )
    .expect("CARRY transforms under dynamic-2")
    .circuit()
    .clone()
}

/// One engine × threads configuration, both engines timed.
struct Row {
    threads: usize,
    shots_ms: f64,
    prefix_ms: f64,
    speedup: f64,
}

fn sweep(
    circuit: &Circuit,
    shots: u64,
    seed: u64,
    threads_list: &[usize],
) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    let mut baseline_counts = None;
    for &threads in threads_list {
        let timed = |engine: Engine| {
            let exec = Executor::new()
                .shots(shots)
                .seed(seed)
                .threads(threads)
                .engine(engine);
            let start = Instant::now();
            let counts = exec.run(circuit);
            (start.elapsed().as_secs_f64() * 1e3, counts)
        };
        let (shots_ms, shots_counts) = timed(Engine::Shots);
        let (prefix_ms, prefix_counts) = timed(Engine::Prefix);
        if shots_counts != prefix_counts {
            return Err(format!(
                "engines diverged at {threads} thread(s) — the prefix tree is not \
                 bit-identical to the per-shot executor"
            ));
        }
        match &baseline_counts {
            None => baseline_counts = Some(shots_counts),
            Some(base) => {
                if base != &shots_counts {
                    return Err(format!(
                        "seeded counts diverged at {threads} threads — determinism \
                         contract broken"
                    ));
                }
            }
        }
        rows.push(Row {
            threads,
            shots_ms,
            prefix_ms,
            speedup: shots_ms / prefix_ms.max(f64::MIN_POSITIVE),
        });
    }
    Ok(rows)
}

fn render(rows: &[Row], shots: u64, seed: u64) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("shot_scaling/v1");
    w.key("workload");
    w.string("CARRY_dynamic2");
    w.key("shots");
    w.uint(shots);
    w.key("seed");
    w.uint(seed);
    w.key("host_cores");
    w.uint(host_cores());
    w.key("counts_identical");
    w.bool(true);
    w.key("rows");
    w.begin_array();
    for r in rows {
        w.begin_object();
        w.key("threads");
        w.uint(r.threads as u64);
        w.key("per_shot_ms");
        w.float(r.shots_ms);
        w.key("prefix_ms");
        w.float(r.prefix_ms);
        w.key("per_shot_shots_per_sec");
        w.float(shots as f64 / (r.shots_ms / 1e3).max(f64::MIN_POSITIVE));
        w.key("prefix_shots_per_sec");
        w.float(shots as f64 / (r.prefix_ms / 1e3).max(f64::MIN_POSITIVE));
        w.key("prefix_speedup");
        w.float(r.speedup);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    doc
}

/// The `--check PATH` gate: structural validation of the committed point
/// plus a fresh parity sweep.
fn check(path: &str, seed: u64) -> Result<String, String> {
    let committed =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    qobs::json::validate(&committed)
        .map_err(|e| format!("committed document '{path}' is not valid JSON: {e}"))?;
    if !committed.contains("\"schema\":\"shot_scaling/v1\"") {
        return Err(format!(
            "'{path}' does not declare schema shot_scaling/v1 — regenerate it"
        ));
    }
    if !committed.contains("\"shots\":4096") {
        return Err(format!(
            "'{path}' is not a 4096-shot trajectory point — regenerate it"
        ));
    }
    if !committed.contains("\"counts_identical\":true") {
        return Err(format!("'{path}' does not assert engine parity"));
    }
    let best = committed
        .split("\"prefix_speedup\":")
        .skip(1)
        .filter_map(|rest| {
            let end = rest.find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())?;
            rest[..end].parse::<f64>().ok()
        })
        .fold(f64::NAN, f64::max);
    // NaN (no prefix_speedup fields parsed) must fail, hence the explicit arm.
    if best.is_nan() || best < COMMITTED_SPEEDUP_FLOOR {
        return Err(format!(
            "committed prefix speedup peaks at {best:.2}x, below the {COMMITTED_SPEEDUP_FLOOR}x \
             floor — the branch-tree engine regressed (or '{path}' predates it)"
        ));
    }
    // Fresh parity: a quick engine × threads sweep re-asserts bit-identity
    // on this machine; timings are not compared (machine-dependent).
    let circuit = carry_dynamic2();
    let rows = sweep(&circuit, CHECK_SHOTS, seed, &[1, 8])?;
    Ok(format!(
        "shot-scaling: OK (committed peak {best:.2}x >= {COMMITTED_SPEEDUP_FLOOR}x, \
         fresh parity over {} configs at {CHECK_SHOTS} shots)",
        rows.len()
    ))
}

fn host_cores() -> u64 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
}
