//! Shot-executor thread scaling on the paper's heaviest sampled circuit.
//!
//! Runs CARRY under dynamic-2 (three Toffolis, the deepest Table II entry)
//! at a fixed seed across worker counts, timing each run and asserting the
//! counts are bit-identical — the determinism contract of the per-shot RNG
//! streams made observable as a benchmark. `--shots N` and `--threads-list
//! 1,2,4,8` override the defaults; the speedup column is relative to one
//! worker.

use bench::args;
use bench::report::Table;
use dqc::{transform_with_scheme, DynamicScheme, TransformOptions};
use qalgo::suites::toffoli_suite;
use qsim::Executor;
use std::time::Instant;

fn main() {
    let csv = args::flag("--csv");
    let shots = args::shots(1024);
    let seed = args::value("--seed").unwrap_or(0xD41Eu64);
    let threads_list: Vec<usize> = args::value::<String>("--threads-list")
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    let carry = toffoli_suite()
        .into_iter()
        .find(|b| b.name == "CARRY")
        .expect("CARRY is in the Toffoli suite");
    let dynamic = transform_with_scheme(
        &carry.circuit,
        &carry.roles,
        DynamicScheme::Dynamic2,
        &TransformOptions::default(),
    )
    .expect("CARRY transforms under dynamic-2");
    let circuit = dynamic.circuit();

    let mut t = Table::new(vec!["threads", "wall ms", "speedup", "counts identical"]);
    let mut baseline_ms = None;
    let mut baseline_counts = None;
    for &threads in &threads_list {
        let exec = Executor::new().shots(shots).seed(seed).threads(threads);
        let start = Instant::now();
        let counts = exec.run(circuit);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let identical = match &baseline_counts {
            None => {
                baseline_counts = Some(counts);
                true
            }
            Some(base) => base == &counts,
        };
        assert!(
            identical,
            "seeded counts diverged at {threads} threads — determinism contract broken"
        );
        let speedup = baseline_ms.get_or_insert(ms).max(f64::MIN_POSITIVE) / ms;
        t.row(vec![
            threads.to_string(),
            format!("{ms:.2}"),
            format!("{speedup:.2}x"),
            "yes".to_string(),
        ]);
    }

    println!(
        "Shot scaling — CARRY dynamic-2, {shots} shots, seed {seed:#x} \
         (host has {} core(s))\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\ncounts are asserted bit-identical across worker counts before timing");
    println!("is reported; a divergence aborts the run.");
}
