//! Load generator and CI gate for the `dqctd` batch service.
//!
//! Drives a service with pipelined submission bursts at twice its queue
//! capacity and reports the operator-facing numbers: throughput, p50/p99
//! job latency, cache hit rate, shed rate, and — the robustness
//! invariant — dropped accepted jobs (always zero, or the run fails).
//!
//! ```text
//! service_load [--jobs N] [--burst N] [--workers N] [--queue N] [--shots N]
//!              [--out PATH]       # write the service_load/v1 JSON document
//!              [--check PATH]     # CI gate: structural checks + fresh chaos drill
//!              [--live ADDR]      # drive a running dqctd over TCP
//!              [--expect-shed]    # with --live: require a nonzero shed count
//! ```
//!
//! The committed `BENCH_service_load.json` at the repo root is the
//! trajectory point; regenerate it with
//!
//! ```text
//! cargo run --release -p bench --bin service_load -- --out BENCH_service_load.json
//! ```
//!
//! `--check PATH` validates the committed document (schema, zero drops,
//! sane rates) and runs two fresh in-process drills:
//!
//! - the *chaos drill*: with a fault plan panicking/delaying ~10% of jobs
//!   at *job* scope, the server must answer typed per-job failures for
//!   exactly the faulted set, serve every other job bit-identically to a
//!   fault-free server, and drain with nothing dropped;
//! - the *recovery drill*: a hand-crafted crashed journal (admitted jobs
//!   without completions, one recorded completion, a torn tail) must boot
//!   into a server that truncates the tear, replays every incomplete job
//!   bit-identically to a crash-free run, and serves recorded completions
//!   byte-for-byte to idempotent retries.

use bench::args;
use bench::report::Table;
use dqctd::{
    field_counts, field_str, field_u64, job_scope_key, read_frame, render_submit, write_frame,
    Config, FsyncPolicy, JobSpec, Journal, Server, MAX_FRAME_BYTES,
};
use qalgo::suites::toffoli_free_suite;
use qcir::qasm::to_qasm;
use qfault::FaultPlan;
use qobs::json::JsonWriter;
use std::io::{self, Write};

use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The chaos drill's plan: ~10% of jobs panic-faulted, ~10% delay-faulted,
/// decided per job id.
const DRILL_PLAN: &str = "seed=9,panic=0.1,delay=0.1,delay-ms=2";

/// Jobs in the fresh `--check` chaos drill.
const DRILL_JOBS: usize = 48;

fn main() -> ExitCode {
    // The chaos drill injects per-shot panics that the resilient executor
    // catches and isolates; keep them off stderr while letting real
    // panics through.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("qfault: injected panic"));
        if !injected {
            default_hook(info);
        }
    }));
    match real_main() {
        Ok(summary) => {
            eprintln!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("service_load: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<String, String> {
    if let Some(path) = args::value::<String>("--check") {
        return check(&path);
    }
    if let Some(addr) = args::value::<String>("--live") {
        return live(&addr);
    }
    let stats = measure()?;
    if let Some(path) = args::value::<String>("--out") {
        let doc = render(&stats);
        std::fs::write(&path, &doc).map_err(|e| format!("cannot write '{path}': {e}"))?;
        return Ok(format!(
            "service_load: wrote the trajectory point to {path} ({:.0} jobs/s, shed rate {:.2})",
            stats.jobs_per_sec, stats.shed_rate
        ));
    }
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["jobs/s".into(), format!("{:.0}", stats.jobs_per_sec)]);
    t.row(vec![
        "p50 latency ms".into(),
        format!("{:.2}", stats.p50_ms),
    ]);
    t.row(vec![
        "p99 latency ms".into(),
        format!("{:.2}", stats.p99_ms),
    ]);
    t.row(vec![
        "cache hit rate".into(),
        format!("{:.2}", stats.cache_hit_rate),
    ]);
    t.row(vec![
        "shed rate at 2x".into(),
        format!("{:.2}", stats.shed_rate),
    ]);
    t.row(vec!["submitted".into(), stats.submitted.to_string()]);
    t.row(vec!["completed".into(), stats.completed.to_string()]);
    t.row(vec!["rejected".into(), stats.rejected.to_string()]);
    t.row(vec!["dropped".into(), stats.dropped.to_string()]);
    t.row(vec![
        "recovery replayed".into(),
        stats.recovery.replayed.to_string(),
    ]);
    t.row(vec![
        "recovery replay ms".into(),
        format!("{:.2}", stats.recovery.replay_ms),
    ]);
    println!(
        "dqctd service load — {} jobs in bursts of {} against {} worker(s), queue {}\n",
        stats.submitted, stats.burst, stats.workers, stats.queue
    );
    print!("{}", t.render());
    Ok(format!(
        "service_load: {:.0} jobs/s, {} shed, {} dropped",
        stats.jobs_per_sec, stats.rejected, stats.dropped
    ))
}

/// A response sink shared with the in-process worker pool.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut inner = self.0.lock().map_err(|_| io::Error::other("poisoned"))?;
        inner.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn frames_of(bytes: &[u8]) -> Vec<String> {
    let mut reader = bytes;
    let mut frames = Vec::new();
    while let Ok(Some(payload)) = read_frame(&mut reader, MAX_FRAME_BYTES) {
        if let Ok(text) = String::from_utf8(payload) {
            frames.push(text);
        }
    }
    frames
}

fn wait_for_frames(buf: &SharedBuf, n: usize) -> Result<Vec<String>, String> {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let frames = frames_of(&buf.0.lock().map_err(|_| "sink poisoned".to_string())?);
        if frames.len() >= n {
            return Ok(frames);
        }
        if Instant::now() > deadline {
            return Err(format!(
                "timed out waiting for {n} responses, have {}",
                frames.len()
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Extracts a (possibly fractional) number field from a response.
fn field_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let tail = &json[start..];
    let end = tail
        .find(|c: char| !c.is_ascii_digit() && !matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The probe job every burst submits: the first toffoli-free benchmark.
fn probe(id: &str, shots: u64) -> JobSpec {
    let suite = toffoli_free_suite();
    let b = &suite[0];
    JobSpec {
        id: id.to_string(),
        shots: Some(shots),
        seed: None,
        answer: b.roles.answer().iter().map(|q| q.index()).collect(),
        data: b.roles.data().iter().map(|q| q.index()).collect(),
        ancilla: b.roles.ancilla().iter().map(|q| q.index()).collect(),
        scheme: None,
        deadline_ms: Some(60_000),
        qasm: to_qasm(&b.circuit),
    }
}

struct Stats {
    workers: usize,
    queue: usize,
    burst: usize,
    shots: u64,
    submitted: u64,
    completed: u64,
    rejected: u64,
    errors: u64,
    dropped: i64,
    jobs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    cache_hit_rate: f64,
    shed_rate: f64,
    recovery: RecoveryStats,
}

/// What the recovery drill measured on a crashed-journal boot.
struct RecoveryStats {
    /// Incomplete admissions replayed through the pipeline.
    replayed: u64,
    /// Wall-clock from boot until every replayed job was answered.
    replay_ms: f64,
    /// Bytes of torn tail the journal truncated on open.
    truncated_bytes: u64,
    /// Retries of completed ids served from the completion index.
    dedup_served: u64,
    /// Every retry returned the recorded response byte-for-byte.
    byte_identical: bool,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives an in-process server with pipelined bursts at 2x queue capacity.
fn measure() -> Result<Stats, String> {
    let workers: usize = args::value("--workers").unwrap_or(2);
    let queue: usize = args::value("--queue").unwrap_or(8);
    let shots: u64 = args::shots(32);
    // 2x capacity: each burst holds twice what the service can absorb
    // (queue slots plus in-flight workers), so admission control must act.
    let burst: usize = args::value("--burst").unwrap_or(2 * (queue + workers));
    let jobs: usize = args::value("--jobs").unwrap_or(240);
    let server = Server::start(Config {
        workers,
        queue_capacity: queue,
        ..Config::default()
    });
    let started = Instant::now();
    let mut responses = Vec::new();
    let mut submitted = 0u64;
    let mut burst_index = 0usize;
    while submitted < jobs as u64 {
        let in_burst = burst.min(jobs - submitted as usize);
        let mut request = Vec::new();
        for i in 0..in_burst {
            let id = format!("load-{burst_index}-{i}");
            write_frame(&mut request, &render_submit(&probe(&id, shots)))
                .map_err(|e| format!("cannot frame a request: {e}"))?;
        }
        let sink = SharedBuf::default();
        server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
        responses.extend(wait_for_frames(&sink, in_burst)?);
        submitted += in_burst as u64;
        burst_index += 1;
    }
    let wall = started.elapsed().as_secs_f64();
    server.join();
    if server.pending() != 0 {
        return Err(format!(
            "{} accepted jobs were never answered",
            server.pending()
        ));
    }

    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut errors = 0u64;
    let mut hits = 0u64;
    let mut latencies = Vec::new();
    for frame in &responses {
        match field_str(frame, "type") {
            Some("result") => {
                completed += 1;
                if field_str(frame, "cache") == Some("hit") {
                    hits += 1;
                }
                let queue_ms = field_f64(frame, "queue_ms").unwrap_or(0.0);
                let run_ms = field_f64(frame, "run_ms").unwrap_or(0.0);
                latencies.push(queue_ms + run_ms);
            }
            Some("rejected") => rejected += 1,
            _ => errors += 1,
        }
    }
    latencies.sort_by(f64::total_cmp);
    let recovery = recovery_drill()?;
    Ok(Stats {
        workers,
        queue,
        burst,
        shots,
        submitted,
        completed,
        rejected,
        errors,
        dropped: submitted as i64 - completed as i64 - rejected as i64 - errors as i64,
        jobs_per_sec: completed as f64 / wall.max(f64::MIN_POSITIVE),
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        cache_hit_rate: hits as f64 / (completed as f64).max(1.0),
        shed_rate: rejected as f64 / (submitted as f64).max(1.0),
        recovery,
    })
}

fn render(stats: &Stats) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("service_load/v1");
    w.key("workload");
    w.string("toffoli_free_bv_burst");
    w.key("workers");
    w.uint(stats.workers as u64);
    w.key("queue_capacity");
    w.uint(stats.queue as u64);
    w.key("burst");
    w.uint(stats.burst as u64);
    w.key("shots");
    w.uint(stats.shots);
    w.key("submitted");
    w.uint(stats.submitted);
    w.key("completed");
    w.uint(stats.completed);
    w.key("rejected");
    w.uint(stats.rejected);
    w.key("errors");
    w.uint(stats.errors);
    w.key("dropped");
    w.uint(stats.dropped.max(0) as u64);
    w.key("jobs_per_sec");
    w.float(stats.jobs_per_sec);
    w.key("latency_ms");
    w.begin_object();
    w.key("p50");
    w.float(stats.p50_ms);
    w.key("p99");
    w.float(stats.p99_ms);
    w.end_object();
    w.key("cache_hit_rate");
    w.float(stats.cache_hit_rate);
    w.key("shed_rate_at_2x");
    w.float(stats.shed_rate);
    w.key("recovery");
    w.begin_object();
    w.key("replayed");
    w.uint(stats.recovery.replayed);
    w.key("replay_ms");
    w.float(stats.recovery.replay_ms);
    w.key("truncated_bytes");
    w.uint(stats.recovery.truncated_bytes);
    w.key("dedup_served");
    w.uint(stats.recovery.dedup_served);
    w.key("byte_identical_retries");
    w.bool(stats.recovery.byte_identical);
    w.end_object();
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    doc
}

/// The recovery drill: boots a server on a hand-crafted crashed journal —
/// admitted jobs with no completion (what a SIGKILL between admit and
/// respond leaves), one recorded completion, and a torn tail — and
/// measures the recovery path end to end.
fn recovery_drill() -> Result<RecoveryStats, String> {
    let path = {
        let mut p = std::env::temp_dir();
        p.push(format!("dqctd-recovery-drill-{}", std::process::id()));
        p
    };
    let _ = std::fs::remove_file(&path);
    let incomplete: Vec<String> = (0..4).map(|i| format!("recover-{i}")).collect();
    let recorded = br#"{"type":"result","id":"already-done","marker":42}"#.to_vec();
    {
        let (journal, _) = Journal::open(&path, FsyncPolicy::Always)
            .map_err(|e| format!("cannot open the drill journal: {e}"))?;
        for id in &incomplete {
            journal
                .append_admitted(&probe(id, 32))
                .map_err(|e| format!("cannot journal an admission: {e}"))?;
        }
        journal
            .append_admitted(&probe("already-done", 32))
            .map_err(|e| format!("cannot journal an admission: {e}"))?;
        journal
            .append_completed("already-done", &recorded)
            .map_err(|e| format!("cannot journal a completion: {e}"))?;
    }
    // The torn tail: a length prefix announcing 100 bytes, three present.
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot tear the journal: {e}"))?;
        file.write_all(&[0, 0, 0, 100, b'x', b'y', b'z'])
            .map_err(|e| format!("cannot tear the journal: {e}"))?;
    }

    let booted = Instant::now();
    let server = Server::try_start(Config {
        journal: Some(path.clone()),
        ..Config::default()
    })?;
    let deadline = Instant::now() + Duration::from_secs(120);
    while server.pending() > 0 {
        if Instant::now() > deadline {
            return Err("replayed jobs never finished".to_string());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let replay_ms = booted.elapsed().as_secs_f64() * 1e3;

    let metrics = server.metrics_json();
    let replayed = field_u64(&metrics, "journal.replayed")
        .ok_or_else(|| format!("no journal.replayed counter in {metrics}"))?;
    if replayed != incomplete.len() as u64 {
        return Err(format!(
            "{replayed} jobs replayed, expected {}",
            incomplete.len()
        ));
    }
    let truncated_bytes = field_u64(&metrics, "journal.truncated_bytes")
        .ok_or_else(|| format!("no journal.truncated_bytes counter in {metrics}"))?;
    if truncated_bytes != 7 {
        return Err(format!(
            "truncated {truncated_bytes} bytes, expected the 7-byte tear"
        ));
    }

    // Retries: recorded completions come back byte-for-byte; replayed jobs
    // answer from the completion index, twice, identically.
    let fetch = |id: &str| -> Result<Vec<String>, String> {
        let mut request = Vec::new();
        write_frame(&mut request, &render_submit(&probe(id, 32)))
            .map_err(|e| format!("cannot frame a retry: {e}"))?;
        let sink = SharedBuf::default();
        server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
        wait_for_frames(&sink, 1)
    };
    let mut byte_identical = true;
    let mut dedup_served = 0u64;
    let served = fetch("already-done")?;
    byte_identical &= served[0].as_bytes() == recorded.as_slice();
    dedup_served += 1;
    // A crash-free reference server for bit-identity of the replays.
    let reference = Server::start(Config::default());
    for id in &incomplete {
        let first = fetch(id)?;
        let second = fetch(id)?;
        byte_identical &= first == second;
        dedup_served += 2;
        if field_str(&first[0], "type") != Some("result") {
            return Err(format!(
                "{id}: replay did not produce a result: {}",
                first[0]
            ));
        }
        let mut request = Vec::new();
        write_frame(&mut request, &render_submit(&probe(id, 32)))
            .map_err(|e| format!("cannot frame the reference run: {e}"))?;
        let sink = SharedBuf::default();
        reference.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
        let fresh = wait_for_frames(&sink, 1)?;
        if field_counts(&first[0]) != field_counts(&fresh[0]) {
            return Err(format!(
                "{id}: replayed counts diverged from a crash-free run\n  replayed: {}\n  fresh: {}",
                first[0], fresh[0]
            ));
        }
    }
    reference.join();
    server.join();
    let _ = std::fs::remove_file(&path);
    Ok(RecoveryStats {
        replayed,
        replay_ms,
        truncated_bytes,
        dedup_served,
        byte_identical,
    })
}

/// The `--check PATH` gate: structural validation plus the chaos drill.
fn check(path: &str) -> Result<String, String> {
    let committed =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    qobs::json::validate(&committed)
        .map_err(|e| format!("committed document '{path}' is not valid JSON: {e}"))?;
    if !committed.contains("\"schema\":\"service_load/v1\"") {
        return Err(format!(
            "'{path}' does not declare schema service_load/v1 — regenerate it"
        ));
    }
    if !committed.contains("\"dropped\":0") {
        return Err(format!(
            "'{path}' records dropped accepted jobs — the no-drop invariant broke"
        ));
    }
    for key in [
        "\"jobs_per_sec\":",
        "\"cache_hit_rate\":",
        "\"shed_rate_at_2x\":",
        "\"p50\":",
        "\"p99\":",
    ] {
        if !committed.contains(key) {
            return Err(format!("'{path}' is missing {key} — regenerate it"));
        }
    }
    let shed = field_f64(&committed, "shed_rate_at_2x").unwrap_or(-1.0);
    if !(0.0..=1.0).contains(&shed) {
        return Err(format!("'{path}' records a nonsensical shed rate {shed}"));
    }
    for key in [
        "\"recovery\":",
        "\"replayed\":",
        "\"byte_identical_retries\":true",
    ] {
        if !committed.contains(key) {
            return Err(format!(
                "'{path}' is missing recovery stats ({key}) — regenerate it"
            ));
        }
    }
    let drill = chaos_drill()?;
    let recovery = recovery_drill()?;
    Ok(format!(
        "service-load: OK (committed point structurally sound, fresh chaos drill: {drill}; \
         recovery drill: {} replayed in {:.0} ms, {} B torn tail truncated, \
         {} dedup retries byte-identical)",
        recovery.replayed, recovery.replay_ms, recovery.truncated_bytes, recovery.dedup_served
    ))
}

/// The chaos drill: a fault plan at job scope must fault exactly the
/// predicted jobs while everything else is served bit-identically to a
/// fault-free server, and drain drops nothing.
fn chaos_drill() -> Result<String, String> {
    let plan = FaultPlan::parse(DRILL_PLAN).map_err(|e| format!("drill plan: {e}"))?;
    let ids: Vec<String> = (0..DRILL_JOBS).map(|i| format!("drill-{i}")).collect();
    let run = |chaos: Option<FaultPlan>| -> Result<Vec<String>, String> {
        let server = Server::start(Config {
            chaos,
            ..Config::default()
        });
        let mut request = Vec::new();
        for id in &ids {
            write_frame(&mut request, &render_submit(&probe(id, 16)))
                .map_err(|e| format!("cannot frame a request: {e}"))?;
        }
        let sink = SharedBuf::default();
        server.serve_connection(&mut request.as_slice(), Box::new(sink.clone()));
        let frames = wait_for_frames(&sink, ids.len())?;
        server.join();
        if server.pending() != 0 {
            return Err("drain dropped accepted jobs".to_string());
        }
        Ok(frames)
    };
    let clean = run(None)?;
    let chaotic = run(Some(plan.clone()))?;
    let response_for = |frames: &[String], id: &str| -> Result<String, String> {
        frames
            .iter()
            .find(|f| field_str(f, "id") == Some(id))
            .cloned()
            .ok_or_else(|| format!("job {id} was never answered"))
    };
    let mut panicked = 0usize;
    let mut delayed = 0usize;
    for id in &ids {
        let fault = plan.job_fault(job_scope_key(id));
        let clean_frame = response_for(&clean, id)?;
        let chaos_frame = response_for(&chaotic, id)?;
        if field_str(&chaos_frame, "type") != Some("result") {
            return Err(format!("{id}: not answered with a result: {chaos_frame}"));
        }
        if fault.panic {
            panicked += 1;
            let failed = field_u64(&chaos_frame, "failed").unwrap_or(0);
            let requested = field_u64(&chaos_frame, "requested").unwrap_or(0);
            if failed != requested || requested == 0 {
                return Err(format!(
                    "{id}: panic-faulted but {failed}/{requested} shots failed: {chaos_frame}"
                ));
            }
        } else {
            // Unfaulted and delay-only jobs are bit-identical to the
            // fault-free server: injected latency must not change results.
            if fault.delay.is_some() {
                delayed += 1;
            }
            if field_u64(&chaos_frame, "failed") != Some(0) {
                return Err(format!(
                    "{id}: unfaulted job reports failures: {chaos_frame}"
                ));
            }
            if field_counts(&clean_frame) != field_counts(&chaos_frame) {
                return Err(format!(
                    "{id}: counts diverged from the fault-free server\n  clean: {clean_frame}\n  chaos: {chaos_frame}"
                ));
            }
        }
    }
    if panicked == 0 || delayed == 0 {
        return Err(format!(
            "the drill plan faulted {panicked} panic / {delayed} delay jobs out of \
             {DRILL_JOBS} — too few to exercise the chaos path"
        ));
    }
    Ok(format!(
        "{panicked} panic-faulted, {delayed} delay-faulted, {} bit-identical",
        DRILL_JOBS - panicked - delayed
    ))
}

/// The `--live ADDR` gate: overload a *running* dqctd over TCP and assert
/// graceful shedding — typed rejections allowed (required with
/// `--expect-shed`), dropped accepted jobs never.
fn live(addr: &str) -> Result<String, String> {
    use std::net::TcpStream;

    let jobs: usize = args::value("--jobs").unwrap_or(64);
    let shots: u64 = args::shots(8);
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("cannot set a read timeout: {e}"))?;
    let ids: Vec<String> = (0..jobs).map(|i| format!("live-{i}")).collect();
    for id in &ids {
        write_frame(&mut stream, &render_submit(&probe(id, shots)))
            .map_err(|e| format!("cannot submit: {e}"))?;
    }
    let mut answered = 0usize;
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut errors = 0u64;
    while answered < jobs {
        let payload = read_frame(&mut stream, MAX_FRAME_BYTES)
            .map_err(|e| format!("transport failure after {answered} answers: {e}"))?
            .ok_or_else(|| format!("server closed after {answered}/{jobs} answers"))?;
        let text = String::from_utf8(payload).map_err(|_| "non-UTF-8 response".to_string())?;
        if field_str(&text, "id").is_none() {
            continue; // control-channel noise is not a job answer
        }
        answered += 1;
        match field_str(&text, "type") {
            Some("result") => completed += 1,
            Some("rejected") => rejected += 1,
            _ => errors += 1,
        }
    }
    let dropped = jobs as i64 - completed as i64 - rejected as i64 - errors as i64;
    println!(
        "{{\"submitted\":{jobs},\"completed\":{completed},\"rejected\":{rejected},\
         \"errors\":{errors},\"dropped\":{dropped}}}"
    );
    if dropped != 0 {
        return Err(format!("{dropped} accepted jobs were dropped"));
    }
    if args::flag("--expect-shed") && rejected == 0 {
        return Err(format!(
            "expected the overload to shed, but all {jobs} jobs were accepted"
        ));
    }
    Ok(format!(
        "live: {completed} completed, {rejected} shed, 0 dropped over {jobs} submissions"
    ))
}
