//! perf_baseline — the repo's performance trajectory, one JSON document at
//! a time.
//!
//! Runs the paper's representative workloads (a BV instance, a DJ oracle,
//! 3-qubit Grover and CARRY, all under dynamic-2) through the traced
//! pipeline and shot executor across a shots × threads sweep, and emits a
//! schema-stable `perf_baseline/v1` JSON document: per-phase wall times,
//! shots/sec, gate-apply histogram summaries and the disabled-tracing
//! overhead measurement. The committed `BENCH_perf_baseline.json` at the
//! repo root is the first point of that trajectory; regenerate it with
//!
//! ```text
//! cargo run --release -p bench --bin perf_baseline > BENCH_perf_baseline.json
//! ```
//!
//! `--check PATH` is the CI gate: it re-runs a quick profile, fails loudly
//! when a pipeline phase goes missing from the fresh run, when the
//! committed document has structurally drifted from the current schema, or
//! when the disabled-tracing fast path regresses past the per-call budget.
//! Timing *values* are machine-dependent and deliberately not compared.

use bench::args;
use dqc::{DynamicScheme, Pipeline, QubitRoles};
use qalgo::suites::{toffoli_free_suite, toffoli_suite};
use qalgo::{grover_circuit, optimal_iterations};
use qcir::Circuit;
use qobs::json::JsonWriter;
use qobs::{Metric, Observer, Tracer};
use qsim::{Engine, Executor};
use std::process::ExitCode;
use std::time::Instant;

/// Disabled-tracing budget: `Tracer::is_enabled` + `Tracer::shot_local`
/// must average under this many nanoseconds per call. The real cost is a
/// branch on an `Option` (single-digit ns); the budget is generous so only
/// a structural regression (a lock or allocation sneaking onto the
/// disabled path) trips it, not a noisy neighbour.
const DISABLED_NS_PER_CALL_BUDGET: f64 = 50.0;

/// Calls per overhead measurement; large enough to amortize timer noise.
const OVERHEAD_CALLS: u64 = 2_000_000;

/// Prefix-engine floor for `--check`: on CARRY dynamic-2 at
/// [`PREFIX_CHECK_SHOTS`] shots the branch-tree engine must beat the
/// per-shot executor by at least this factor. The measured ratio is ~15-25x
/// in release builds; the floor is generous so only a structural regression
/// (the tree silently falling back to per-shot, or its walk growing a
/// per-shot state evolution) trips it, not a noisy neighbour.
const PREFIX_SPEEDUP_FLOOR: f64 = 3.0;

/// Shots for the prefix-floor measurement: enough for the per-shot loop to
/// dominate the tree-build cost.
const PREFIX_CHECK_SHOTS: u64 = 1024;

/// Phase keys every run must carry; `--check` fails when one goes missing.
const PHASE_KEYS: [&str; 5] = [
    "transform_ms",
    "verify_ms",
    "account_ms",
    "simulate_ms",
    "total_ms",
];

fn main() -> ExitCode {
    match real_main() {
        Ok(summary) => {
            eprintln!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("perf_baseline: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<String, String> {
    let seed = args::value("--seed").unwrap_or(7u64);
    if let Some(path) = args::value::<String>("--check") {
        return check(&path, seed);
    }
    let shots_list = list_flag("--shots-list", &[256, 1024]);
    let threads_list: Vec<usize> = list_flag("--threads-list", &[1, 2])
        .into_iter()
        .map(|n| (n as usize).max(1))
        .collect();
    let rows = profile(&shots_list, &threads_list, seed)?;
    let doc = render(&rows, seed, measure_disabled_overhead());
    match args::value::<String>("--out") {
        Some(path) => {
            std::fs::write(&path, &doc).map_err(|e| format!("cannot write '{path}': {e}"))?;
            Ok(format!(
                "perf_baseline: wrote {} runs to {path}",
                rows.len()
            ))
        }
        None => {
            println!("{doc}");
            Ok(format!("perf_baseline: {} runs", rows.len()))
        }
    }
}

/// The representative workload set: one Toffoli-free row per family plus
/// the deepest Toffoli row, everything the committed baseline tracks.
fn workloads() -> Vec<(String, Circuit, QubitRoles)> {
    let mut out = Vec::new();
    for wanted in ["BV_110", "DJ_XOR"] {
        let b = toffoli_free_suite()
            .into_iter()
            .find(|b| b.name == wanted)
            .expect("Table I suite contains its own rows");
        out.push((b.name, b.circuit, b.roles));
    }
    let grover = grover_circuit(0b101, 3, optimal_iterations(3));
    let roles = QubitRoles::data_plus_answer(grover.num_qubits());
    out.push(("GROVER_3".to_string(), grover, roles));
    let carry = toffoli_suite()
        .into_iter()
        .find(|b| b.name == "CARRY")
        .expect("CARRY is in the Toffoli suite");
    out.push((carry.name, carry.circuit, carry.roles));
    out
}

/// One profiled configuration.
struct RunRow {
    workload: String,
    shots: u64,
    threads: usize,
    /// `(key, milliseconds)` in [`PHASE_KEYS`] order.
    phases: Vec<(&'static str, f64)>,
    shots_per_sec: f64,
    completed: u64,
    termination: String,
    /// `(gate kind, observations, mean ns)` from the traced apply path.
    apply: Vec<(String, u64, f64)>,
}

fn profile(shots_list: &[u64], threads_list: &[usize], seed: u64) -> Result<Vec<RunRow>, String> {
    let mut rows = Vec::new();
    for (name, circuit, roles) in workloads() {
        for &shots in shots_list {
            for &threads in threads_list {
                rows.push(run_one(&name, &circuit, &roles, shots, threads, seed)?);
            }
        }
    }
    Ok(rows)
}

fn run_one(
    name: &str,
    circuit: &Circuit,
    roles: &QubitRoles,
    shots: u64,
    threads: usize,
    seed: u64,
) -> Result<RunRow, String> {
    // A fresh observer + wall-clock tracer per configuration: the phase
    // histograms then hold exactly this run, and the traced apply path
    // feeds the per-gate-kind summaries.
    let obs = Observer::metrics_only();
    let tracer = Tracer::wall();
    let total_start = Instant::now();
    let result = Pipeline::new()
        .scheme(DynamicScheme::Dynamic2)
        .observer(obs.clone())
        .tracer(tracer.clone())
        .run(circuit, roles)
        .map_err(|e| format!("{name}: {e}"))?;
    let exec = Executor::new()
        .shots(shots)
        .seed(seed)
        .threads(threads)
        .observer(obs.clone())
        .tracer(tracer.clone());
    let sim_start = Instant::now();
    let (_counts, report) = exec.run_resilient(result.dynamic.circuit());
    let simulate_ms = sim_start.elapsed().as_secs_f64() * 1e3;
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    let hist_ms = |key: &str| {
        obs.metrics()
            .histogram(key)
            .map_or(0.0, |h| h.sum as f64 / 1e6)
    };
    let phases = vec![
        ("transform_ms", hist_ms("pipeline.transform_ns")),
        ("verify_ms", hist_ms("pipeline.verify_ns")),
        ("account_ms", hist_ms("pipeline.account_ns")),
        ("simulate_ms", simulate_ms),
        ("total_ms", total_ms),
    ];
    // Missing instrumentation is a structural failure, not a slow run.
    for probe in [
        "pipeline.transform_ns",
        "pipeline.verify_ns",
        "executor.run_resilient_ns",
    ] {
        if obs.metrics().histogram(probe).is_none() {
            return Err(format!(
                "{name}: phase histogram '{probe}' missing — instrumentation regressed"
            ));
        }
    }
    let apply: Vec<(String, u64, f64)> = obs
        .metrics()
        .snapshot()
        .into_iter()
        .filter_map(|(k, m)| {
            let kind = k.strip_prefix("executor.apply.")?.strip_suffix("_ns")?;
            match m {
                Metric::Histogram(h) => Some((kind.to_string(), h.count, h.mean())),
                _ => None,
            }
        })
        .collect();
    if apply.is_empty() {
        return Err(format!(
            "{name}: no executor.apply.*_ns histograms — the traced apply path regressed"
        ));
    }
    Ok(RunRow {
        workload: name.to_string(),
        shots,
        threads,
        phases,
        shots_per_sec: report.completed as f64 / (simulate_ms / 1e3).max(f64::MIN_POSITIVE),
        completed: report.completed,
        termination: report.termination.to_string(),
        apply,
    })
}

/// Times the disabled-tracing fast path: the per-call average over
/// [`OVERHEAD_CALLS`] `is_enabled` + `shot_local` pairs, through
/// `black_box` so the branch is not optimized away.
fn measure_disabled_overhead() -> (f64, u64) {
    let tracer = Tracer::disabled();
    let iters = OVERHEAD_CALLS / 2;
    let start = Instant::now();
    for i in 0..iters {
        let t = std::hint::black_box(&tracer);
        std::hint::black_box(t.is_enabled());
        std::hint::black_box(t.shot_local(i));
    }
    let ns = start.elapsed().as_nanos() as f64;
    (ns / OVERHEAD_CALLS as f64, OVERHEAD_CALLS)
}

fn render(rows: &[RunRow], seed: u64, overhead: (f64, u64)) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("perf_baseline/v1");
    w.key("scheme");
    w.string("dynamic2");
    w.key("seed");
    w.uint(seed);
    w.key("host_cores");
    w.uint(std::thread::available_parallelism().map_or(1, |n| n.get() as u64));
    w.key("workloads");
    w.begin_array();
    for (name, _, _) in workloads() {
        w.string(&name);
    }
    w.end_array();
    w.key("runs");
    w.begin_array();
    for r in rows {
        w.begin_object();
        w.key("workload");
        w.string(&r.workload);
        w.key("shots");
        w.uint(r.shots);
        w.key("threads");
        w.uint(r.threads as u64);
        w.key("phases");
        w.begin_object();
        for (key, ms) in &r.phases {
            w.key(key);
            w.float(*ms);
        }
        w.end_object();
        w.key("shots_per_sec");
        w.float(r.shots_per_sec);
        w.key("completed");
        w.uint(r.completed);
        w.key("termination");
        w.string(&r.termination);
        w.key("apply_ns");
        w.begin_object();
        for (kind, count, mean) in &r.apply {
            w.key(kind);
            w.begin_object();
            w.key("count");
            w.uint(*count);
            w.key("mean_ns");
            w.float(*mean);
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.key("overhead");
    w.begin_object();
    w.key("disabled_ns_per_call");
    w.float(overhead.0);
    w.key("calls");
    w.uint(overhead.1);
    w.end_object();
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    doc
}

/// The `--check PATH` gate: quick fresh profile + structural comparison
/// against the committed baseline + disabled-overhead budget.
fn check(path: &str, seed: u64) -> Result<String, String> {
    let committed =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline '{path}': {e}"))?;
    qobs::json::validate(&committed)
        .map_err(|e| format!("baseline '{path}' is not valid JSON: {e}"))?;
    if !committed.contains("\"schema\":\"perf_baseline/v1\"") {
        return Err(format!(
            "baseline '{path}' does not declare schema perf_baseline/v1 — regenerate it"
        ));
    }
    // Structural drift: every current workload and phase key must appear in
    // the committed document, as must the overhead section.
    for (name, _, _) in workloads() {
        if !committed.contains(&format!("\"workload\":\"{name}\"")) {
            return Err(format!(
                "baseline '{path}' is missing workload '{name}' — regenerate it"
            ));
        }
    }
    for key in PHASE_KEYS {
        if !committed.contains(&format!("\"{key}\":")) {
            return Err(format!(
                "baseline '{path}' is missing phase key '{key}' — regenerate it"
            ));
        }
    }
    if !committed.contains("\"disabled_ns_per_call\":") {
        return Err(format!(
            "baseline '{path}' is missing the overhead section — regenerate it"
        ));
    }
    // Fresh quick profile: run_one fails on any missing phase histogram or
    // empty apply path, so instrumentation regressions surface here.
    let rows = profile(&[64], &[1], seed)?;
    for r in &rows {
        if r.termination != "completed" {
            return Err(format!(
                "quick profile of '{}' terminated '{}' instead of completing",
                r.workload, r.termination
            ));
        }
    }
    let (ns_per_call, calls) = measure_disabled_overhead();
    if ns_per_call > DISABLED_NS_PER_CALL_BUDGET {
        return Err(format!(
            "disabled tracing costs {ns_per_call:.1} ns/call over {calls} calls \
             (budget {DISABLED_NS_PER_CALL_BUDGET} ns) — the disabled path must \
             stay one branch on a static"
        ));
    }
    let prefix_speedup = measure_prefix_speedup(seed)?;
    if prefix_speedup < PREFIX_SPEEDUP_FLOOR {
        return Err(format!(
            "prefix engine is only {prefix_speedup:.2}x the per-shot executor on CARRY \
             dynamic-2 at {PREFIX_CHECK_SHOTS} shots (floor {PREFIX_SPEEDUP_FLOOR}x) — \
             the branch-tree engine regressed or silently fell back to per-shot"
        ));
    }
    Ok(format!(
        "perf-baseline: OK ({} quick runs, disabled tracing {ns_per_call:.1} ns/call, \
         prefix engine {prefix_speedup:.2}x per-shot)",
        rows.len()
    ))
}

/// Times both shot engines on CARRY dynamic-2 and returns the prefix
/// engine's speedup, after asserting the engines agree bit-for-bit. Best of
/// two timings per engine so a single scheduler hiccup cannot fail CI.
fn measure_prefix_speedup(seed: u64) -> Result<f64, String> {
    let carry = toffoli_suite()
        .into_iter()
        .find(|b| b.name == "CARRY")
        .expect("CARRY is in the Toffoli suite");
    let result = Pipeline::new()
        .scheme(DynamicScheme::Dynamic2)
        .run(&carry.circuit, &carry.roles)
        .map_err(|e| format!("CARRY: {e}"))?;
    let circuit = result.dynamic.circuit();
    let timed = |engine: Engine| {
        let exec = Executor::new()
            .shots(PREFIX_CHECK_SHOTS)
            .seed(seed)
            .threads(1)
            .engine(engine);
        let mut best = f64::INFINITY;
        let mut counts = None;
        for _ in 0..2 {
            let start = Instant::now();
            counts = Some(exec.run(circuit));
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, counts.expect("two runs happened"))
    };
    let (shots_s, shots_counts) = timed(Engine::Shots);
    let (prefix_s, prefix_counts) = timed(Engine::Prefix);
    if shots_counts != prefix_counts {
        return Err(
            "prefix engine diverged from the per-shot executor on CARRY dynamic-2 — \
             bit-identity broken"
                .to_string(),
        );
    }
    Ok(shots_s / prefix_s.max(f64::MIN_POSITIVE))
}

/// `--flag 1,2,4` → the parsed list, or `default` when absent/empty.
fn list_flag(flag: &str, default: &[u64]) -> Vec<u64> {
    let parsed: Vec<u64> = args::value::<String>(flag)
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default();
    if parsed.is_empty() {
        default.to_vec()
    } else {
        parsed
    }
}
