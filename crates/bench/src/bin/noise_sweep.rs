//! Noise ablation: expected-outcome probability vs. device noise strength.

use bench::runners::noise_sweep;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let scales = [0.0, 0.25, 0.5, 1.0];
    let t = noise_sweep(&scales);
    println!("Noise sweep — exact expected-outcome probability under device-like noise");
    println!("(scale 1.0 ~ 2021-era superconducting device; density-matrix backend)\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
}
