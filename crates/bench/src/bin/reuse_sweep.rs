//! reuse_sweep — the qubit-reuse design space as a Pareto document.
//!
//! Sweeps every feasible lane width `k` for the representative workloads
//! (BV_110, DJ_XOR, 3-qubit Grover and CARRY, all under dynamic-2) with
//! [`dqc::explore`], simulates each point noiselessly and under
//! `device_like` noise, and emits a schema-stable `reuse_pareto/v1` JSON
//! document: per-point width, depth, resets, conditioned gates, cost-model
//! score, exact TVD, shots/sec and the noisy-vs-noiseless TVD, plus the
//! width × depth Pareto frontier. The committed `BENCH_reuse_pareto.json`
//! at the repo root is the reference sweep; regenerate it with
//!
//! ```text
//! cargo run --release -p bench --bin reuse_sweep > BENCH_reuse_pareto.json
//! ```
//!
//! `--check PATH` is the CI gate: it re-explores the design space, fails
//! loudly when a suite loses feasible widths relative to the committed
//! document, when any width above 1 stops being exactly equivalent, or
//! when no suite offers at least [`MIN_FRONTIER_POINTS`] distinct
//! `(width, depth)` frontier points. Timing *values* are machine-dependent
//! and deliberately not compared.

use bench::args;
use dqc::{explore, DynamicScheme, ExploreOptions, QubitRoles, ReusePoint};
use qalgo::suites::{toffoli_free_suite, toffoli_suite};
use qalgo::{grover_circuit, optimal_iterations};
use qcir::Circuit;
use qobs::json::JsonWriter;
use qsim::{Executor, NoiseModel};
use std::process::ExitCode;
use std::time::Instant;

/// The design-space acceptance bar: at least one suite must expose this
/// many distinct `(width, depth)` frontier points, otherwise the sweep
/// degenerated back to the paper's single trade-off.
const MIN_FRONTIER_POINTS: usize = 3;

/// Widths above 1 must verify exactly: the planner only admits them when
/// every classicalized read is sound, so a nonzero TVD is a planner bug
/// (k = 1 keeps the paper's approximation and is exempt).
const EXACT_TVD_BOUND: f64 = 1e-9;

fn main() -> ExitCode {
    match real_main() {
        Ok(summary) => {
            eprintln!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("reuse_sweep: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<String, String> {
    let seed = args::value("--seed").unwrap_or(7u64);
    if let Some(path) = args::value::<String>("--check") {
        return check(&path);
    }
    let shots = args::shots(512);
    let noise_scale = args::value("--noise").unwrap_or(1.0f64);
    let suites = sweep(shots, seed, noise_scale, true)?;
    let doc = render(&suites, seed, shots, noise_scale);
    let points: usize = suites.iter().map(|s| s.points.len()).sum();
    match args::value::<String>("--out") {
        Some(path) => {
            std::fs::write(&path, &doc).map_err(|e| format!("cannot write '{path}': {e}"))?;
            Ok(format!(
                "reuse_sweep: wrote {points} points across {} suites to {path}",
                suites.len()
            ))
        }
        None => {
            println!("{doc}");
            Ok(format!(
                "reuse_sweep: {points} points across {} suites",
                suites.len()
            ))
        }
    }
}

/// The same representative workloads the perf baseline tracks.
fn workloads() -> Vec<(String, Circuit, QubitRoles)> {
    let mut out = Vec::new();
    for wanted in ["BV_110", "DJ_XOR"] {
        let b = toffoli_free_suite()
            .into_iter()
            .find(|b| b.name == wanted)
            .expect("Table I suite contains its own rows");
        out.push((b.name, b.circuit, b.roles));
    }
    let grover = grover_circuit(0b101, 3, optimal_iterations(3));
    let roles = QubitRoles::data_plus_answer(grover.num_qubits());
    out.push(("GROVER_3".to_string(), grover, roles));
    let carry = toffoli_suite()
        .into_iter()
        .find(|b| b.name == "CARRY")
        .expect("CARRY is in the Toffoli suite");
    out.push((carry.name, carry.circuit, carry.roles));
    out
}

/// One design-space point, measured.
struct PointRow {
    k: usize,
    qubits: usize,
    depth: usize,
    resets: usize,
    conditioned: usize,
    score: f64,
    exact_tvd: f64,
    shots_per_sec: f64,
    noisy_tvd: f64,
    frontier: bool,
}

/// One workload's swept design space.
struct SuiteRow {
    suite: String,
    max_width: usize,
    points: Vec<PointRow>,
}

impl SuiteRow {
    fn frontier_points(&self) -> usize {
        self.points.iter().filter(|p| p.frontier).count()
    }
}

fn sweep(shots: u64, seed: u64, noise_scale: f64, simulate: bool) -> Result<Vec<SuiteRow>, String> {
    let noise = NoiseModel::try_device_like(noise_scale).map_err(|e| format!("--noise: {e}"))?;
    let opts = ExploreOptions {
        scheme: DynamicScheme::Dynamic2,
        ..ExploreOptions::default()
    };
    let mut out = Vec::new();
    for (name, circuit, roles) in workloads() {
        let points = explore(&circuit, &roles, &opts).map_err(|e| format!("{name}: {e}"))?;
        let max_width = points.last().map_or(0, |p| p.k);
        let mut rows: Vec<PointRow> = points
            .iter()
            .map(|p| measure_point(p, shots, seed, &noise, simulate))
            .collect();
        mark_frontier(&mut rows);
        out.push(SuiteRow {
            suite: name,
            max_width,
            points: rows,
        });
    }
    Ok(out)
}

fn measure_point(
    p: &ReusePoint,
    shots: u64,
    seed: u64,
    noise: &NoiseModel,
    simulate: bool,
) -> PointRow {
    let exact_tvd = p.verify.as_ref().map_or(f64::NAN, |v| v.tvd);
    let (shots_per_sec, noisy_tvd) = if simulate {
        let exec = |noisy: bool| {
            let mut e = Executor::new().shots(shots).seed(seed).threads(1);
            if noisy {
                e = e.noise(noise.clone());
            }
            e
        };
        let start = Instant::now();
        let ideal = exec(false).run(p.dynamic.circuit());
        let secs = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        let noisy = exec(true).run(p.dynamic.circuit());
        (
            shots as f64 / secs,
            ideal.to_distribution().tvd(&noisy.to_distribution()),
        )
    } else {
        (0.0, 0.0)
    };
    PointRow {
        k: p.k,
        qubits: p.summary.qubits,
        depth: p.summary.depth,
        resets: p.summary.resets,
        conditioned: p.summary.conditioned,
        score: p.score,
        exact_tvd,
        shots_per_sec,
        noisy_tvd,
        frontier: false, // set by mark_frontier once all points exist
    }
}

/// Marks the non-dominated `(qubits, depth)` points: a point is on the
/// frontier unless another point is no worse on both axes and strictly
/// better on one.
fn mark_frontier(rows: &mut [PointRow]) {
    for i in 0..rows.len() {
        let dominated = rows.iter().enumerate().any(|(j, other)| {
            j != i
                && other.qubits <= rows[i].qubits
                && other.depth <= rows[i].depth
                && (other.qubits < rows[i].qubits || other.depth < rows[i].depth)
        });
        rows[i].frontier = !dominated;
    }
}

fn render(suites: &[SuiteRow], seed: u64, shots: u64, noise_scale: f64) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("reuse_pareto/v1");
    w.key("scheme");
    w.string("dynamic2");
    w.key("seed");
    w.uint(seed);
    w.key("shots");
    w.uint(shots);
    w.key("noise_scale");
    w.float(noise_scale);
    w.key("suites");
    w.begin_array();
    for s in suites {
        w.begin_object();
        w.key("suite");
        w.string(&s.suite);
        w.key("max_width");
        w.uint(s.max_width as u64);
        w.key("frontier_points");
        w.uint(s.frontier_points() as u64);
        w.key("points");
        w.begin_array();
        for p in &s.points {
            w.begin_object();
            w.key("k");
            w.uint(p.k as u64);
            w.key("qubits");
            w.uint(p.qubits as u64);
            w.key("depth");
            w.uint(p.depth as u64);
            w.key("resets");
            w.uint(p.resets as u64);
            w.key("conditioned");
            w.uint(p.conditioned as u64);
            w.key("score");
            w.float(p.score);
            w.key("exact_tvd");
            w.float(p.exact_tvd);
            w.key("shots_per_sec");
            w.float(p.shots_per_sec);
            w.key("noisy_tvd");
            w.float(p.noisy_tvd);
            w.key("frontier");
            w.bool(p.frontier);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    doc
}

/// The `--check PATH` gate: fresh exploration + structural comparison
/// against the committed document + the frontier-size acceptance bar.
fn check(path: &str) -> Result<String, String> {
    let committed =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read sweep '{path}': {e}"))?;
    qobs::json::validate(&committed)
        .map_err(|e| format!("sweep '{path}' is not valid JSON: {e}"))?;
    if !committed.contains("\"schema\":\"reuse_pareto/v1\"") {
        return Err(format!(
            "sweep '{path}' does not declare schema reuse_pareto/v1 — regenerate it"
        ));
    }
    // Fresh exploration without simulation: cheap, and exact per-width
    // feasibility + equivalence is what the gate certifies.
    let suites = sweep(0, 0, 0.0, false)?;
    let mut best = 0usize;
    for s in &suites {
        if !committed.contains(&format!("\"suite\":\"{}\"", s.suite)) {
            return Err(format!(
                "sweep '{path}' is missing suite '{}' — regenerate it",
                s.suite
            ));
        }
        for p in &s.points {
            // NaN (no verify report) must fail too, so compare negatively.
            if p.k > 1
                && p.exact_tvd.partial_cmp(&EXACT_TVD_BOUND) != Some(std::cmp::Ordering::Less)
            {
                return Err(format!(
                    "{} k={} has tvd {:.3e} — widths above 1 must be exact \
                     (the soundness filter regressed)",
                    s.suite, p.k, p.exact_tvd
                ));
            }
        }
        // The committed document must still know every currently-feasible
        // width; a vanished width means the committed sweep is stale.
        let committed_suite = committed
            .split("\"suite\":\"")
            .find(|chunk| chunk.starts_with(&s.suite))
            .unwrap_or("");
        for p in &s.points {
            if !committed_suite.contains(&format!("\"k\":{}", p.k)) {
                return Err(format!(
                    "sweep '{path}' suite '{}' is missing width k={} — regenerate it",
                    s.suite, p.k
                ));
            }
        }
        best = best.max(s.frontier_points());
    }
    if best < MIN_FRONTIER_POINTS {
        return Err(format!(
            "no suite exposes {MIN_FRONTIER_POINTS}+ distinct (width, depth) frontier \
             points (best: {best}) — the design space collapsed"
        ));
    }
    Ok(format!(
        "reuse-sweep: OK ({} suites, best frontier {best} points)",
        suites.len()
    ))
}
