//! Regenerates the paper's Fig. 7 (expected-outcome probabilities).

use bench::args;
use bench::report::metrics_section;
use bench::runners::fig7_observed;
use qobs::Observer;

fn main() {
    let csv = args::flag("--csv");
    let metrics = args::flag("--metrics");
    let shots = args::shots(1024);
    let obs = if metrics {
        Observer::metrics_only()
    } else {
        Observer::disabled()
    };
    let t = fig7_observed(shots, 0xD41E, args::threads(), &obs);
    println!("Fig. 7 — probability of the expected outcome ({shots} shots, plus exact values)\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\nshape check: dynamic-2 tracks the traditional probabilities; dynamic-1 deviates.");
    if metrics {
        println!();
        print!("{}", metrics_section(obs.metrics()));
    }
}
