//! Regenerates the paper's Fig. 7 (expected-outcome probabilities).

use bench::report::metrics_section;
use bench::runners::fig7_observed;
use qobs::Observer;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let metrics = std::env::args().any(|a| a == "--metrics");
    let shots = std::env::args()
        .skip_while(|a| a != "--shots")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let obs = if metrics {
        Observer::metrics_only()
    } else {
        Observer::disabled()
    };
    let t = fig7_observed(shots, 0xD41E, &obs);
    println!("Fig. 7 — probability of the expected outcome ({shots} shots, plus exact values)\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\nshape check: dynamic-2 tracks the traditional probabilities; dynamic-1 deviates.");
    if metrics {
        println!();
        print!("{}", metrics_section(obs.metrics()));
    }
}
