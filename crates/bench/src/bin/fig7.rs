//! Regenerates the paper's Fig. 7 (expected-outcome probabilities).

use bench::runners::fig7;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let shots = std::env::args()
        .skip_while(|a| a != "--shots")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let t = fig7(shots, 0xD41E);
    println!("Fig. 7 — probability of the expected outcome ({shots} shots, plus exact values)\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\nshape check: dynamic-2 tracks the traditional probabilities; dynamic-1 deviates.");
}
