//! Routing overhead: traditional circuits on constrained topologies vs.
//! dynamic circuits (which need only one coupled pair per answer qubit).
//!
//! A practical argument for dynamic circuits the paper leaves implicit:
//! beyond saving qubits, the 2-qubit realization eliminates SWAP-insertion
//! overhead entirely.

use bench::args;
use bench::report::Table;
use dqc::{transform_with_scheme, DynamicScheme, TransformOptions};
use qalgo::suites::{toffoli_free_suite, toffoli_suite};
use qcir::decompose::{decompose_ccx, ToffoliStyle};
use qcir::routing::{route, CouplingMap};
use qcir::CircuitStats;

fn main() {
    let csv = args::flag("--csv");
    // Accepted for interface uniformity with the shot-based binaries; the
    // routing tables are deterministic, so the worker count cannot change
    // them.
    let _ = args::threads();
    let mut t = Table::new(vec![
        "benchmark",
        "topology",
        "gates unrouted",
        "swaps tradi",
        "gates routed",
        "depth routed",
        "swaps dynamic",
    ]);
    let benches: Vec<_> = toffoli_free_suite()
        .into_iter()
        .filter(|b| b.name == "BV_1111" || b.name == "BV_111" || b.name == "DJ_XOR")
        .chain(
            toffoli_suite()
                .into_iter()
                .filter(|b| b.name == "AND" || b.name == "CARRY"),
        )
        .collect();
    for b in &benches {
        // Lower Toffolis so only <= 2-qubit gates remain, then route.
        let lowered = decompose_ccx(&b.circuit, ToffoliStyle::CliffordT);
        let n = lowered.num_qubits();
        for (name, map) in [
            ("line", CouplingMap::line(n)),
            (
                "ring",
                if n >= 3 {
                    CouplingMap::ring(n)
                } else {
                    CouplingMap::line(n)
                },
            ),
            ("star", CouplingMap::star(n)),
        ] {
            let routed = route(&lowered, &map).expect("routable");
            let stats = CircuitStats::of(&routed.circuit);
            // The dynamic circuit has 2 qubits: zero swaps on any connected
            // topology with at least one edge.
            let dynamic = transform_with_scheme(
                &b.circuit,
                &b.roles,
                DynamicScheme::Dynamic2,
                &TransformOptions::default(),
            )
            .expect("transforms");
            let dyn_routed = route(
                &qcir::decompose::decompose_cv(dynamic.circuit()),
                &CouplingMap::line(2),
            )
            .expect("dynamic routes on one edge");
            t.row(vec![
                b.name.clone(),
                name.to_string(),
                lowered.len().to_string(),
                routed.swaps_inserted.to_string(),
                stats.gate_count.to_string(),
                stats.depth.to_string(),
                dyn_routed.swaps_inserted.to_string(),
            ]);
        }
    }
    println!("Routing overhead — SWAP insertion on constrained topologies\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\ndynamic circuits route with zero SWAPs on any connected device.");
}
