//! Scalability: n-qubit BV collapses to 2 physical qubits for every n.

use bench::report::Table;
use dqc::{transform, verify, QubitRoles, ResourceSummary, TransformOptions};
use qalgo::bv_circuit;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let mut t = Table::new(vec![
        "n (data qubits)",
        "qubits t>d",
        "gates t>d",
        "depth t>d",
        "iterations",
        "tvd",
    ]);
    for n in 2..=8usize {
        let hidden: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let circuit = bv_circuit(&hidden);
        let roles = QubitRoles::data_plus_answer(n + 1);
        let d = transform(&circuit, &roles, &TransformOptions::default())
            .expect("BV transforms at any width");
        let tr = ResourceSummary::of_circuit(&circuit);
        let dy = ResourceSummary::of_dynamic(&d);
        let report = verify::compare(&circuit, &roles, &d);
        t.row(vec![
            n.to_string(),
            format!("{}>{}", tr.qubits, dy.qubits),
            format!("{}>{}", tr.gates, dy.gates),
            format!("{}>{}", tr.depth, dy.depth),
            d.num_iterations().to_string(),
            format!("{:.1e}", report.tvd),
        ]);
    }
    println!("Scaling — BV_n dynamically realized on 2 qubits for every n\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
}
