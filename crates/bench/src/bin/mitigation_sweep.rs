//! Mitigation sweep: Fig. 7 benchmarks under device-like noise, dynamic-1
//! vs dynamic-2, bare vs mitigated (verified resets + 3-fold measurement
//! repetition with majority vote).

use bench::runners::mitigation_sweep;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let (scale, shots, seed) = (1.0, 4096, 7);
    let t = mitigation_sweep(scale, shots, seed);
    println!(
        "Mitigation sweep — expected-outcome probability at device_like({scale}), \
         {shots} shots, seed {seed}"
    );
    println!("(mitigated = reset-verify + meas-repeat=3, resolved by majority vote)\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
}
