//! Regenerates the paper's Table II (Toffoli-based DJ circuits).

use bench::runners::table2;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let t = table2();
    println!("Table II — Toffoli-based DJ circuits (ours vs. paper)");
    println!("traditional = Clifford+T lowering; dynamic-1 = CV chain; dynamic-2 = CV + shared ancilla\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
}
