//! Chaos sweep: Fig. 7 benchmarks under a deterministic injected fault
//! plan, dynamic-1 vs dynamic-2, bare vs mitigated. Rows surface the run
//! report (termination cause, failed/discarded shots) for both runs.

use bench::runners::chaos_sweep;

fn main() {
    // Injected per-shot panics are caught and counted by the resilient
    // executor; keep them off stderr while letting real panics through.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("qfault: injected panic"));
        if !injected {
            default_hook(info);
        }
    }));
    let csv = std::env::args().any(|a| a == "--csv");
    let spec = std::env::args()
        .skip_while(|a| a != "--inject")
        .nth(1)
        .unwrap_or_else(|| "seed=5,reset-leak=0.05,meas-flip=0.05,cc-flip=0.02,panic=0.01".into());
    let (shots, seed) = (4096, 7);
    let t = chaos_sweep(&spec, shots, seed);
    println!(
        "Chaos sweep — expected-outcome probability under '{spec}', {shots} shots, seed {seed}"
    );
    println!(
        "(mitigated = reset-verify + meas-repeat=3; termination and failed/disc \
         columns show bare|mitigated)\n"
    );
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
}
