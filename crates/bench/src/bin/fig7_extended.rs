//! Fig. 7, extended: accuracy vs. Toffoli count on 3-input oracles.
//!
//! The paper evaluates eight single-Toffoli functions plus CARRY (three
//! Toffolis). This sweep fills the gap with 3-input oracles of increasing
//! Toffoli count, charting where dynamic-2's exactness ends.

use bench::args;
use bench::report::{fmt_prob, Table};
use dqc::{transform_with_scheme, verify, DynamicScheme, QubitRoles, TransformOptions};
use qalgo::{dj_circuit, TruthTable};
use qcir::Gate;

fn main() {
    let csv = args::flag("--csv");
    // Accepted for interface uniformity with the shot-based binaries; this
    // sweep is computed exactly, so the worker count cannot change it.
    let _ = args::threads();
    let cases: Vec<(&str, TruthTable)> = vec![
        ("AND3", TruthTable::and(3)),
        ("OR3", TruthTable::or(3)),
        ("XOR3", TruthTable::xor(3)),
        ("MAJ", TruthTable::majority3()),
        ("NAND3", TruthTable::and(3).complement()),
        ("ONE-HOT", TruthTable::from_fn(3, |x| x.count_ones() == 1)),
        ("EXACTLY-2", TruthTable::from_fn(3, |x| x.count_ones() == 2)),
    ];
    let mut t = Table::new(vec![
        "oracle", "toffolis", "mcx", "p tradi", "p dyn1", "p dyn2", "tvd dyn1", "tvd dyn2",
    ]);
    let opts = TransformOptions::default();
    for (name, tt) in cases {
        let circ = dj_circuit(&tt);
        let roles = QubitRoles::data_plus_answer(circ.num_qubits());
        let ccx = circ
            .iter()
            .filter(|i| i.as_gate() == Some(&Gate::Ccx))
            .count();
        let mcx = circ
            .iter()
            .filter(|i| matches!(i.as_gate(), Some(Gate::Mcx(_))))
            .count();
        let d1 = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic1, &opts)
            .expect("dynamic-1 transforms 3-input DJ oracles");
        let d2 = transform_with_scheme(&circ, &roles, DynamicScheme::Dynamic2, &opts)
            .expect("dynamic-2 transforms 3-input DJ oracles");
        let r1 = verify::compare(&circ, &roles, &d1);
        let r2 = verify::compare(&circ, &roles, &d2);
        t.row(vec![
            name.to_string(),
            ccx.to_string(),
            mcx.to_string(),
            fmt_prob(r1.p_traditional),
            fmt_prob(r1.p_dynamic),
            fmt_prob(r2.p_dynamic),
            fmt_prob(r1.tvd),
            fmt_prob(r2.tvd),
        ]);
    }
    println!("Fig. 7 extended — 3-input oracles by Toffoli count (exact values)\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\ndynamic-2 stays exact while each data qubit feeds at most one");
    println!("quarter-phase; multi-Toffoli oracles (MAJ, ONE-HOT, ...) break that.");
}
