//! Multi-control Toffoli sweep (the paper's future-work direction).

use bench::runners::mct_sweep;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let max = std::env::args()
        .skip_while(|a| a != "--max")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let t = mct_sweep(max);
    println!("MCT sweep — DJ on n-input AND via the MCX ladder, per scheme\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
}
