//! Ablation of the transformation's design choices.
//!
//! Quantifies what each ingredient buys on the Table II benchmarks:
//!
//! * the **peephole passes** (inverse-pair cancellation, conditioned-X run
//!   merging, dead-write elimination) vs. raw Algorithm 1 output;
//! * the **commutation-aware scheduler**'s ability to pack answer-qubit
//!   gates early (reflected in depth);
//! * the **reset placement options** (paper-style leading resets).

use bench::args;
use bench::report::Table;
use dqc::{transform_with_scheme, DynamicScheme, ResourceSummary, TransformOptions};
use qalgo::suites::toffoli_suite;

fn main() {
    let csv = args::flag("--csv");
    // Accepted for interface uniformity with the shot-based binaries; the
    // ablation is resource counting, so the worker count cannot change it.
    let _ = args::threads();
    let mut t = Table::new(vec![
        "benchmark",
        "scheme",
        "gates raw",
        "gates peephole",
        "saved",
        "depth raw",
        "depth peephole",
        "cond raw",
        "cond peephole",
        "gates all-resets",
    ]);
    for b in toffoli_suite() {
        for scheme in [DynamicScheme::Dynamic1, DynamicScheme::Dynamic2] {
            let raw_opts = TransformOptions {
                peephole: false,
                ..TransformOptions::default()
            };
            let full_reset_opts = TransformOptions {
                reset_first_iteration: true,
                reset_answer_qubits: true,
                ..TransformOptions::default()
            };
            let raw =
                transform_with_scheme(&b.circuit, &b.roles, scheme, &raw_opts).expect("transforms");
            let opt =
                transform_with_scheme(&b.circuit, &b.roles, scheme, &TransformOptions::default())
                    .expect("transforms");
            let resets = transform_with_scheme(&b.circuit, &b.roles, scheme, &full_reset_opts)
                .expect("transforms");
            let sr = ResourceSummary::of_dynamic(&raw);
            let so = ResourceSummary::of_dynamic(&opt);
            let sf = ResourceSummary::of_dynamic(&resets);
            t.row(vec![
                b.name.clone(),
                scheme.to_string(),
                sr.gates.to_string(),
                so.gates.to_string(),
                (sr.gates - so.gates).to_string(),
                sr.depth.to_string(),
                so.depth.to_string(),
                sr.conditioned.to_string(),
                so.conditioned.to_string(),
                sf.gates.to_string(),
            ]);
        }
    }
    println!("Ablation — what the peephole passes and reset options change\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\n'saved' = instructions removed by cancellation + conditioned-X merging");
    println!("+ dead-write elimination; 'cond' = classically controlled gate count");
    println!("(the paper's dynamic-2 claim is 2 per Toffoli *after* merging).");
}
