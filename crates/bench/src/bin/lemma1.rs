//! Lemma 1, validated: m same-target Toffolis cost exactly ONE extra
//! iteration under dynamic-2, with 2 classically controlled X each.

use bench::report::Table;
use dqc::{transform_with_scheme, verify, DynamicScheme, QubitRoles, TransformOptions};
use qcir::{Circuit, CircuitStats, Qubit};

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let mut t = Table::new(vec![
        "toffolis",
        "data qubits",
        "iters dyn1",
        "iters dyn2",
        "cond-X dyn2",
        "resets dyn2",
        "tvd dyn2",
    ]);
    let opts = TransformOptions::default();
    // m Toffolis on a common answer target, controls sliding over m+1 data
    // qubits: (q0,q1), (q1,q2), ...
    for m in 1..=4usize {
        let n_data = m + 1;
        let ans = Qubit::new(n_data);
        let mut c = Circuit::new(n_data + 1, 0);
        c.x(ans).h(ans);
        for d in 0..n_data {
            c.h(Qubit::new(d));
        }
        for k in 0..m {
            c.ccx(Qubit::new(k), Qubit::new(k + 1), ans);
        }
        for d in 0..n_data {
            c.h(Qubit::new(d));
        }
        let roles = QubitRoles::data_plus_answer(n_data + 1);
        let d1 = transform_with_scheme(&c, &roles, DynamicScheme::Dynamic1, &opts)
            .expect("dynamic-1 transforms the sliding-control chain");
        let d2 = transform_with_scheme(&c, &roles, DynamicScheme::Dynamic2, &opts)
            .expect("dynamic-2 transforms the sliding-control chain");
        let s2 = CircuitStats::of(d2.circuit());
        let report = verify::compare(&c, &roles, &d2);
        t.row(vec![
            m.to_string(),
            n_data.to_string(),
            d1.num_iterations().to_string(),
            d2.num_iterations().to_string(),
            s2.conditioned_count.to_string(),
            s2.reset_count.to_string(),
            format!("{:.4}", report.tvd),
        ]);
    }
    println!("Lemma 1 — m same-target Toffolis cost one shared extra iteration\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\niters dyn2 = data qubits + 1 for every m; cond-X = 2m (after merging).");
}
