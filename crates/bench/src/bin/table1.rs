//! Regenerates the paper's Table I (Toffoli-free circuits).

use bench::runners::table1;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let t = table1();
    println!("Table I — Toffoli-free quantum circuits (ours vs. paper)");
    println!("gate convention: dynamic counts exclude measurements, include resets\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\ntvd column: exact total-variation distance between the traditional");
    println!("and dynamic outcome distributions (0 = functionally equivalent).");
}
