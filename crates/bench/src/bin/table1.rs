//! Regenerates the paper's Table I (Toffoli-free circuits).

use bench::args;
use bench::report::metrics_section;
use bench::runners::table1_observed;
use qobs::Observer;

fn main() {
    let csv = args::flag("--csv");
    let metrics = args::flag("--metrics");
    // Accepted for interface uniformity with the shot-based binaries; this
    // table is computed exactly, so the worker count cannot change it.
    let _ = args::threads();
    let obs = if metrics {
        Observer::metrics_only()
    } else {
        Observer::disabled()
    };
    let t = table1_observed(&obs);
    println!("Table I — Toffoli-free quantum circuits (ours vs. paper)");
    println!("gate convention: dynamic counts exclude measurements, include resets\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\ntvd column: exact total-variation distance between the traditional");
    println!("and dynamic outcome distributions (0 = functionally equivalent).");
    if metrics {
        println!();
        print!("{}", metrics_section(obs.metrics()));
    }
}
