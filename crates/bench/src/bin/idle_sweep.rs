//! Idle-decay sweep: the depth-vs-qubits device trade-off of dynamic
//! circuits under per-layer T1 decay.

use bench::runners::idle_sweep;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let t = idle_sweep(&[0.0, 0.005, 0.02, 0.05], 4096, 0x1D7E);
    println!("Idle-decay sweep — expected-outcome probability vs per-layer T1 decay");
    println!("(trajectory executor, hardware-style scheduling, 4096 shots)\n");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\ndynamic circuits run deeper, so idle decay hits them harder —");
    println!("the price of the qubit saving on real hardware.");
}
