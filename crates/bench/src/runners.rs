//! Shared experiment runners behind the benchmark binaries.
//!
//! Each function regenerates one table or figure of the paper and returns a
//! [`Table`] ready to print; the binaries are thin wrappers so that the
//! integration tests and criterion benches can reuse the same code paths.

use crate::paper;
use crate::report::{fmt_prob, Table};
use dqc::{
    transform, transform_observed, transform_with_scheme, verify, DynamicScheme, QubitRoles,
    ResourceSummary, TransformOptions,
};
use qalgo::suites::{toffoli_free_suite, toffoli_suite, Benchmark};
use qalgo::{dj_circuit, TruthTable};
use qcir::decompose::{decompose_ccx, decompose_mcx, ToffoliStyle};
use qcir::{Circuit, Qubit};
use qobs::Observer;
use qsim::density::exact_distribution_noisy;
use qsim::{Executor, NoiseModel};

/// `ours (paper)` cell.
fn vs(ours: usize, paper: usize) -> String {
    format!("{ours} ({paper})")
}

/// Regenerates **Table I** (Toffoli-free circuits): qubit count, gate count
/// and depth for the traditional circuits and their dynamic realizations,
/// side by side with the published values, plus the exact total-variation
/// distance establishing the paper's functional-equivalence claim.
#[must_use]
pub fn table1() -> Table {
    table1_observed(&Observer::disabled())
}

/// [`table1`] with instrumentation: every per-benchmark transform and
/// equivalence check records its spans and timing histograms into the
/// observer, so `table1 --metrics` can append a machine-readable metrics
/// section to the report.
#[must_use]
pub fn table1_observed(obs: &Observer) -> Table {
    let mut t = Table::new(vec![
        "benchmark",
        "qubits t>d",
        "gates tradi",
        "gates dyna",
        "depth tradi",
        "depth dyna",
        "tvd",
    ]);
    for b in toffoli_free_suite() {
        let d = transform_observed(&b.circuit, &b.roles, &TransformOptions::default(), obs)
            .expect("toffoli-free benchmarks always transform");
        let tradi = ResourceSummary::of_circuit(&b.circuit);
        let dyna = ResourceSummary::of_dynamic(&d);
        let report = verify::compare_observed(&b.circuit, &b.roles, &d, obs);
        obs.counter_add("bench.benchmarks", 1);
        let p = paper::table1_row(&b.name).expect("paper row exists");
        t.row(vec![
            b.name.clone(),
            format!("{}>{}", tradi.qubits, dyna.qubits),
            vs(tradi.gates, p.gates.0),
            vs(dyna.gates_excluding_measures(), p.gates.1),
            vs(tradi.depth, p.depth.0),
            vs(dyna.depth, p.depth.1),
            format!("{:.1e}", report.tvd),
        ]);
    }
    t
}

/// Regenerates **Table II** (Toffoli-based DJ circuits): traditional
/// (Clifford+T-lowered) vs dynamic-1 vs dynamic-2 resources, with the
/// published values in parentheses.
#[must_use]
pub fn table2() -> Table {
    let mut t = Table::new(vec![
        "benchmark",
        "qubits t>d",
        "gates tradi",
        "gates dyn1",
        "gates dyn2",
        "depth tradi",
        "depth dyn1",
        "depth dyn2",
        "cv-level g1/g2",
        "iters d1/d2",
    ]);
    for b in toffoli_suite() {
        let (d1, d2) = transform_both(&b);
        let lowered = decompose_ccx(&b.circuit, ToffoliStyle::CliffordT);
        let tradi = ResourceSummary::of_circuit(&lowered);
        // The paper's dynamic columns are at the Clifford+T level (CV
        // lowered per its Fig. 6, with adjacent cancellations applied);
        // the CV-level counts are reported alongside.
        let s1cv = ResourceSummary::of_dynamic(&d1);
        let s2cv = ResourceSummary::of_dynamic(&d2);
        let lower =
            |c: &Circuit| qcir::passes::cancel_adjacent_inverses(&qcir::decompose::decompose_cv(c));
        let s1 = ResourceSummary::of_circuit(&lower(d1.circuit()));
        let s2 = ResourceSummary::of_circuit(&lower(d2.circuit()));
        let p = paper::table2_row(&b.name).expect("paper row exists");
        t.row(vec![
            b.name.clone(),
            format!("{}>{}", tradi.qubits, s1.qubits),
            vs(tradi.gates, p.gates.0),
            vs(s1.gates_excluding_measures(), p.gates.1),
            vs(s2.gates_excluding_measures(), p.gates.2),
            vs(tradi.depth, p.depth.0),
            vs(s1.depth, p.depth.1),
            vs(s2.depth, p.depth.2),
            format!(
                "{}/{}",
                s1cv.gates_excluding_measures(),
                s2cv.gates_excluding_measures()
            ),
            format!(
                "{}/{}",
                s1cv.iterations.unwrap_or(0),
                s2cv.iterations.unwrap_or(0)
            ),
        ]);
    }
    t
}

/// Regenerates **Fig. 7**: probability of the expected outcome (the most
/// probable traditional outcome) under the traditional circuit, dynamic-1
/// and dynamic-2 — exactly (branch enumeration) and sampled with the
/// paper's 1024 shots — plus the total-variation distances of the two
/// schemes.
#[must_use]
pub fn fig7(shots: u64, seed: u64) -> Table {
    fig7_observed(shots, seed, None, &Observer::disabled())
}

/// [`fig7`] with instrumentation: the shot-based estimates run through an
/// observed [`Executor`], so the report can carry the simulation counters
/// (total shots, gates by kind, resets, mid-circuit measurements,
/// classical-control fire/skip) alongside the probabilities. `threads`
/// caps the executor's worker count (`None` = `available_parallelism`);
/// per-shot RNG streams keep every probability identical across values.
#[must_use]
pub fn fig7_observed(shots: u64, seed: u64, threads: Option<usize>, obs: &Observer) -> Table {
    let mut t = Table::new(vec![
        "benchmark",
        "expected",
        "p tradi",
        "p dyn1",
        "p dyn2",
        &format!("p tradi@{shots}"),
        &format!("p dyn1@{shots}"),
        &format!("p dyn2@{shots}"),
        "tvd dyn1",
        "tvd dyn2",
    ]);
    for b in toffoli_suite() {
        let (d1, d2) = transform_both(&b);
        let r1 = verify::compare(&b.circuit, &b.roles, &d1);
        let r2 = verify::compare(&b.circuit, &b.roles, &d2);
        debug_assert_eq!(r1.expected_outcome, r2.expected_outcome);

        // Shot-based estimates, as the paper measured them.
        let mut exec = Executor::new()
            .shots(shots)
            .seed(seed)
            .observer(obs.clone());
        if let Some(t) = threads {
            exec = exec.threads(t);
        }
        let n_data = b.roles.data().len();
        let mut tradi_measured = Circuit::new(b.circuit.num_qubits(), n_data);
        tradi_measured.extend(&b.circuit);
        for (i, &dq) in b.roles.data().iter().enumerate() {
            tradi_measured.measure(dq, qcir::Clbit::new(i));
        }
        let sampled_t = exec.run(&tradi_measured).probability(&r1.expected_outcome);
        let sampled_1 = exec.run(d1.circuit()).probability(&r1.expected_outcome);
        let sampled_2 = exec.run(d2.circuit()).probability(&r2.expected_outcome);

        t.row(vec![
            b.name.clone(),
            r1.expected_outcome.clone(),
            fmt_prob(r1.p_traditional),
            fmt_prob(r1.p_dynamic),
            fmt_prob(r2.p_dynamic),
            fmt_prob(sampled_t),
            fmt_prob(sampled_1),
            fmt_prob(sampled_2),
            fmt_prob(r1.tvd),
            fmt_prob(r2.tvd),
        ]);
    }
    t
}

/// Noise ablation (ours): expected-outcome probability of the Fig. 7
/// benchmarks under a device-like noise model of increasing strength,
/// evaluated exactly on the density-matrix backend. Shows how the dynamic
/// circuits' extra depth interacts with decoherence.
#[must_use]
pub fn noise_sweep(scales: &[f64]) -> Table {
    let mut t = Table::new(vec!["benchmark", "noise", "p tradi", "p dyn1", "p dyn2"]);
    for b in toffoli_suite() {
        // Density-matrix evolution is exponential in qubits; all benchmarks
        // here are at most 4 + 1 ancilla wires.
        let (d1, d2) = transform_both(&b);
        let ideal = verify::compare(&b.circuit, &b.roles, &d1);
        let expected = ideal.expected_outcome.clone();
        let n_data = b.roles.data().len();
        let mut tradi_measured = Circuit::new(b.circuit.num_qubits(), n_data);
        tradi_measured.extend(&b.circuit);
        for (i, &dq) in b.roles.data().iter().enumerate() {
            tradi_measured.measure(dq, qcir::Clbit::new(i));
        }
        for &scale in scales {
            let noise = NoiseModel::device_like(scale);
            let pt = exact_distribution_noisy(&tradi_measured, &noise).get(&expected);
            let p1 = exact_distribution_noisy(d1.circuit(), &noise).get(&expected);
            let p2 = exact_distribution_noisy(d2.circuit(), &noise).get(&expected);
            t.row(vec![
                b.name.clone(),
                format!("{scale:.2}"),
                fmt_prob(pt),
                fmt_prob(p1),
                fmt_prob(p2),
            ]);
        }
    }
    t
}

/// Idle-decay sweep (ours): expected-outcome probability under per-layer
/// amplitude damping, sampled on the trajectory executor with
/// hardware-style scheduling. Exposes the real device trade-off: dynamic
/// circuits save qubits but run ~2-3x deeper, so their answer qubit idles
/// longer between interactions.
#[must_use]
pub fn idle_sweep(gammas: &[f64], shots: u64, seed: u64) -> Table {
    let mut t = Table::new(vec![
        "benchmark",
        "gamma/layer",
        "p tradi",
        "p dyn1",
        "p dyn2",
        "depth t/d1/d2",
    ]);
    for b in toffoli_suite() {
        let (d1, d2) = transform_both(&b);
        let ideal = verify::compare(&b.circuit, &b.roles, &d2);
        let expected = ideal.expected_outcome.clone();
        let n_data = b.roles.data().len();
        let mut tradi_measured = Circuit::new(b.circuit.num_qubits(), n_data);
        tradi_measured.extend(&b.circuit);
        for (i, &dq) in b.roles.data().iter().enumerate() {
            tradi_measured.measure(dq, qcir::Clbit::new(i));
        }
        let depths = format!(
            "{}/{}/{}",
            qcir::depth(&tradi_measured),
            qcir::depth(d1.circuit()),
            qcir::depth(d2.circuit())
        );
        for &gamma in gammas {
            let exec = Executor::new()
                .shots(shots)
                .seed(seed)
                .noise(NoiseModel::ideal().with_idle_damping(gamma));
            let pt = exec.run(&tradi_measured).probability(&expected);
            let p1 = exec.run(d1.circuit()).probability(&expected);
            let p2 = exec.run(d2.circuit()).probability(&expected);
            t.row(vec![
                b.name.clone(),
                format!("{gamma:.3}"),
                fmt_prob(pt),
                fmt_prob(p1),
                fmt_prob(p2),
                depths.clone(),
            ]);
        }
    }
    t
}

/// Mitigation sweep (ours, extends Fig. 7): expected-outcome probability of
/// the Toffoli benchmarks under device-like noise, dynamic-1 vs dynamic-2,
/// bare vs mitigated (verified resets + 3-fold measurement repetition with
/// majority vote). The mitigated runs go through the resilient executor and
/// resolve their vote groups in counts post-processing, so the reported
/// probabilities are over the original register.
#[must_use]
pub fn mitigation_sweep(scale: f64, shots: u64, seed: u64) -> Table {
    mitigation_sweep_observed(scale, shots, seed, &Observer::disabled())
}

/// [`mitigation_sweep`] with instrumentation: simulation and mitigation
/// counters (`mitigate.votes_flipped`, `mitigate.reset_verify_fired`, ...)
/// land in the observer.
#[must_use]
pub fn mitigation_sweep_observed(scale: f64, shots: u64, seed: u64, obs: &Observer) -> Table {
    let mitigation = dqc::MitigationOptions::parse("reset-verify,meas-repeat=3")
        .expect("literal mitigation spec parses");
    let noise = NoiseModel::device_like(scale);
    let mut t = Table::new(vec![
        "benchmark",
        "scheme",
        "p bare",
        "p mitigated",
        "gain",
        "votes flipped",
        "verify fired",
        "termination",
        "failed/disc",
    ]);
    for b in toffoli_suite() {
        let (d1, d2) = transform_both(&b);
        let expected = verify::compare(&b.circuit, &b.roles, &d1).expected_outcome;
        for (scheme, d) in [("dynamic-1", &d1), ("dynamic-2", &d2)] {
            let exec = Executor::new()
                .shots(shots)
                .seed(seed)
                .noise(noise.clone())
                .observer(obs.clone());
            let bare = exec.run(d.circuit()).probability(&expected);
            let hardened = dqc::mitigate(d.circuit(), &mitigation);
            let (counts, report) = exec.run_resilient(hardened.circuit());
            let resolved = hardened.resolve_observed(&counts, obs);
            let mitigated = resolved.counts.probability(&expected);
            t.row(vec![
                b.name.clone(),
                scheme.to_string(),
                fmt_prob(bare),
                fmt_prob(mitigated),
                format!("{:+.4}", mitigated - bare),
                resolved.votes_flipped.to_string(),
                resolved.reset_verify_fired.to_string(),
                report.termination.to_string(),
                format!("{}/{}", report.failed, report.discarded),
            ]);
        }
    }
    t
}

/// Chaos sweep (ours): expected-outcome probability of the Toffoli
/// benchmarks under a deterministic injected fault plan, bare vs mitigated
/// (verified resets + 3-fold measurement repetition). Every row surfaces the
/// run report — termination cause and failed/discarded shot counts — so a
/// budget-limited run is visibly partial instead of silently truncated.
#[must_use]
pub fn chaos_sweep(spec: &str, shots: u64, seed: u64) -> Table {
    let plan = qfault::FaultPlan::parse(spec).expect("chaos sweep fault spec parses");
    let mitigation = dqc::MitigationOptions::parse("reset-verify,meas-repeat=3")
        .expect("literal mitigation spec parses");
    let mut t = Table::new(vec![
        "benchmark",
        "scheme",
        "p bare",
        "p mitigated",
        "gain",
        "termination",
        "failed/disc",
    ]);
    for b in toffoli_suite() {
        let (d1, d2) = transform_both(&b);
        let expected = verify::compare(&b.circuit, &b.roles, &d1).expected_outcome;
        for (scheme, d) in [("dynamic-1", &d1), ("dynamic-2", &d2)] {
            let exec = Executor::new()
                .shots(shots)
                .seed(seed)
                .fault_hook(std::sync::Arc::new(plan.clone()));
            let (bare_counts, bare_report) = exec.run_resilient(d.circuit());
            let bare = bare_counts.probability(&expected);
            let hardened = dqc::mitigate(d.circuit(), &mitigation);
            let (counts, report) = exec.run_resilient(hardened.circuit());
            let resolved = hardened.resolve(&counts);
            let mitigated = resolved.counts.probability(&expected);
            t.row(vec![
                b.name.clone(),
                scheme.to_string(),
                fmt_prob(bare),
                fmt_prob(mitigated),
                format!("{:+.4}", mitigated - bare),
                format!("{}|{}", bare_report.termination, report.termination),
                format!(
                    "{}/{}|{}/{}",
                    bare_report.failed, bare_report.discarded, report.failed, report.discarded
                ),
            ]);
        }
    }
    t
}

/// Multi-control Toffoli sweep (the paper's stated future work): DJ on the
/// n-input AND, lowered through the MCX ladder, transformed with each
/// scheme. Reports resources, iteration counts and exact accuracy.
#[must_use]
pub fn mct_sweep(max_controls: usize) -> Table {
    let mut t = Table::new(vec![
        "n",
        "scheme",
        "qubits t>d",
        "gates",
        "depth",
        "iters",
        "tvd",
    ]);
    for n in 3..=max_controls {
        let dj = dj_circuit(&TruthTable::and(n));
        // Lower MCX to the CCX ladder; the ladder's scratch qubits are
        // *measured* data qubits in the dynamic realization.
        let lowered = decompose_mcx(&dj);
        let extra = lowered.num_qubits() - dj.num_qubits();
        let mut data: Vec<Qubit> = (0..n).map(Qubit::new).collect();
        data.extend((0..extra).map(|i| Qubit::new(dj.num_qubits() + i)));
        let roles = QubitRoles::new(data, Vec::new(), vec![Qubit::new(n)]);

        let tradi = ResourceSummary::of_circuit(&decompose_ccx(&lowered, ToffoliStyle::CliffordT));
        for scheme in [
            DynamicScheme::Direct,
            DynamicScheme::Dynamic1,
            DynamicScheme::Dynamic2,
        ] {
            // For dynamic-2 on a ladder the CV-phase ancillas feed *data*
            // qubits (the ladder scratch), so they must be measured
            // themselves: lower manually and put them in the data set.
            let result = if scheme == DynamicScheme::Dynamic2 {
                let phase_ancillas = qcir::decompose::cv_ancilla_wires(&lowered);
                let lowered2 = decompose_ccx(&lowered, ToffoliStyle::CvAncilla);
                let mut data2: Vec<Qubit> = roles.data().to_vec();
                data2.extend(phase_ancillas);
                let roles2 = QubitRoles::new(data2, Vec::new(), roles.answer().to_vec());
                transform(&lowered2, &roles2, &TransformOptions::default()).map(|d| {
                    let report = verify_marginal(&lowered2, &roles2, &d, n);
                    (d, report)
                })
            } else {
                transform_with_scheme(&lowered, &roles, scheme, &TransformOptions::default()).map(
                    |d| {
                        let report = verify::compare(&lowered, &roles, &d);
                        (d, report)
                    },
                )
            };
            let row = match result {
                Ok((d, report)) => {
                    let s = ResourceSummary::of_dynamic(&d);
                    vec![
                        n.to_string(),
                        scheme.to_string(),
                        format!("{}>{}", tradi.qubits, s.qubits),
                        s.gates.to_string(),
                        s.depth.to_string(),
                        s.iterations.unwrap_or(0).to_string(),
                        fmt_prob(report.tvd),
                    ]
                }
                Err(e) => vec![
                    n.to_string(),
                    scheme.to_string(),
                    format!("{}>-", tradi.qubits),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("n/a ({e})"),
                ],
            };
            t.row(row);
        }
    }
    t
}

/// Compares traditional vs dynamic on the marginal distribution of the
/// first `keep` data bits (the algorithm's real inputs), tracing out the
/// scratch-qubit measurement records the ladder lowering added.
fn verify_marginal(
    circuit: &Circuit,
    roles: &QubitRoles,
    dynamic: &dqc::DynamicCircuit,
    keep: usize,
) -> verify::EquivalenceReport {
    let positions: Vec<usize> = (0..keep).collect();
    let traditional = verify::traditional_distribution(circuit, roles).marginal(&positions);
    let dyn_dist = verify::dynamic_distribution(dynamic).marginal(&positions);
    let tvd = traditional.tvd(&dyn_dist);
    let expected = traditional.argmax().unwrap_or_default().to_string();
    let p_traditional = traditional.get(&expected);
    let p_dynamic = dyn_dist.get(&expected);
    verify::EquivalenceReport {
        traditional,
        dynamic: dyn_dist,
        tvd,
        expected_outcome: expected,
        p_traditional,
        p_dynamic,
    }
}

/// Transforms a benchmark with both of the paper's schemes.
#[must_use]
pub fn transform_both(b: &Benchmark) -> (dqc::DynamicCircuit, dqc::DynamicCircuit) {
    let opts = TransformOptions::default();
    let d1 = transform_with_scheme(&b.circuit, &b.roles, DynamicScheme::Dynamic1, &opts)
        .expect("dynamic-1 transforms every Table II benchmark");
    let d2 = transform_with_scheme(&b.circuit, &b.roles, DynamicScheme::Dynamic2, &opts)
        .expect("dynamic-2 transforms every Table II benchmark");
    (d1, d2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_28_rows() {
        let t = table1();
        assert_eq!(t.len(), 28);
        let text = t.render();
        assert!(text.contains("BV_111"));
        assert!(text.contains("DJ_XNOR"));
    }

    #[test]
    fn table2_has_nine_rows() {
        let t = table2();
        assert_eq!(t.len(), 9);
        assert!(t.render().contains("CARRY"));
    }

    #[test]
    fn fig7_reports_probabilities() {
        let t = fig7(256, 7);
        assert_eq!(t.len(), 9);
        let text = t.render();
        assert!(text.contains("expected"));
    }

    #[test]
    fn observed_runners_fill_the_registry() {
        let obs = Observer::metrics_only();
        let _ = table1_observed(&obs);
        assert_eq!(obs.metrics().counter("bench.benchmarks"), Some(28));
        assert_eq!(
            obs.metrics()
                .histogram("verify.equivalence_ns")
                .unwrap()
                .count,
            28
        );

        let obs2 = Observer::metrics_only();
        let _ = fig7_observed(32, 7, None, &obs2);
        // 9 benchmarks x 3 circuits (traditional, dynamic-1, dynamic-2).
        assert_eq!(obs2.metrics().counter("executor.shots"), Some(9 * 3 * 32));
        assert!(obs2.metrics().counter("executor.mid_circuit_measurements") > Some(0));
        let section = crate::report::metrics_section(obs2.metrics());
        qobs::json::validate(section.lines().nth(1).unwrap()).unwrap();
    }

    #[test]
    fn noise_sweep_scales_rows() {
        let t = noise_sweep(&[0.0, 1.0]);
        assert_eq!(t.len(), 18);
    }

    #[test]
    fn mitigation_strictly_improves_carry_dynamic2_under_device_noise() {
        // The PR's headline acceptance criterion: 3-fold measurement
        // repetition (plus verified resets) strictly improves the seeded
        // success probability of CARRY under dynamic-2 at device_like(1.0).
        let b = toffoli_suite()
            .into_iter()
            .find(|b| b.name == "CARRY")
            .expect("CARRY is in the Toffoli suite");
        let (_, d2) = transform_both(&b);
        let expected = verify::compare(&b.circuit, &b.roles, &d2).expected_outcome;
        let mitigation = dqc::MitigationOptions::parse("reset-verify,meas-repeat=3").unwrap();
        let noise = NoiseModel::device_like(1.0);
        let exec = Executor::new().shots(4096).seed(7).noise(noise);
        let bare = exec.run(d2.circuit()).probability(&expected);
        let hardened = dqc::mitigate(d2.circuit(), &mitigation);
        let (counts, report) = exec.run_resilient(hardened.circuit());
        assert_eq!(report.completed, 4096);
        let mitigated = hardened.resolve(&counts).counts.probability(&expected);
        assert!(
            mitigated > bare,
            "mitigated {mitigated} must strictly beat bare {bare}"
        );
    }

    #[test]
    fn exhausted_budget_degrades_to_partial_counts_in_the_sweep_path() {
        // Budget exhaustion mid-sweep must surface as a partial-count run
        // report, never a panic: a conditioned NaN phase poisons ~half the
        // shots, and the failure budget stops the run early.
        let b = toffoli_suite()
            .into_iter()
            .find(|b| b.name == "CARRY")
            .expect("CARRY is in the Toffoli suite");
        let (_, d2) = transform_both(&b);
        let mut poisoned = Circuit::new(d2.circuit().num_qubits(), d2.circuit().num_clbits());
        poisoned.extend(d2.circuit());
        poisoned.push(
            qcir::Instruction::gate(qcir::Gate::P(f64::NAN), vec![Qubit::new(0)])
                .with_condition(qcir::Condition::bit(qcir::Clbit::new(0))),
        );
        poisoned.measure(Qubit::new(0), qcir::Clbit::new(0));
        let exec = Executor::new().shots(512).seed(3).max_failed(8);
        let (counts, report) = exec.run_resilient(&poisoned);
        assert_eq!(report.termination, qsim::Termination::FailedShotBudget);
        assert!(report.failed > 8);
        assert!(report.completed < 512);
        assert_eq!(counts.total(), report.completed);
    }

    #[test]
    fn mitigation_sweep_emits_two_rows_per_benchmark() {
        let t = mitigation_sweep(0.5, 128, 7);
        assert_eq!(t.len(), 18);
        let csv = t.to_csv();
        assert!(csv.contains("dynamic-1") && csv.contains("dynamic-2"));
        assert!(csv.contains("CARRY"));
        // Every row surfaces its run report.
        assert!(csv.contains("termination"), "{csv}");
        assert!(csv.contains("completed"), "{csv}");
        assert!(csv.contains("failed/disc"), "{csv}");
    }

    #[test]
    fn chaos_sweep_reports_terminations_per_row() {
        let t = chaos_sweep("seed=5,meas-flip=0.1,panic=0.05", 64, 7);
        assert_eq!(t.len(), 18);
        let csv = t.to_csv();
        assert!(csv.contains("completed|completed"), "{csv}");
        // panic=0.05 over 64 shots fails at least one shot in some row.
        assert!(
            csv.lines().skip(1).any(|l| !l.ends_with("0/0|0/0")),
            "{csv}"
        );
    }

    #[test]
    fn mct_sweep_covers_requested_range() {
        let t = mct_sweep(3);
        assert_eq!(t.len(), 3);
        // With per-target ancillas every scheme is realizable: no "n/a".
        assert!(!t.to_csv().contains("n/a"));
    }

    #[test]
    fn idle_sweep_emits_one_row_per_gamma_per_benchmark() {
        let t = idle_sweep(&[0.0, 0.1], 64, 1);
        assert_eq!(t.len(), 18);
        let csv = t.to_csv();
        assert!(csv.contains("0.100"));
        assert!(csv.contains("CARRY"));
    }
}
