//! Criterion benchmarks: simulator throughput.

use bench::runners::transform_both;
use criterion::{criterion_group, criterion_main, Criterion};
use qalgo::suites::toffoli_suite;
use qsim::branch::exact_distribution;
use qsim::density::exact_distribution_noisy;
use qsim::{Executor, NoiseModel};

fn bench_simulation(c: &mut Criterion) {
    let suite = toffoli_suite();
    let carry = suite.iter().find(|b| b.name == "CARRY").unwrap().clone();
    let (d1, d2) = transform_both(&carry);

    let mut g = c.benchmark_group("simulate");
    g.bench_function("executor_1024_shots_carry_dyn2", |b| {
        let exec = Executor::new().shots(1024).seed(1);
        b.iter(|| exec.run(d2.circuit()))
    });
    g.bench_function("branch_exact_carry_dyn1", |b| {
        b.iter(|| exact_distribution(d1.circuit()))
    });
    g.bench_function("branch_exact_carry_dyn2", |b| {
        b.iter(|| exact_distribution(d2.circuit()))
    });
    g.bench_function("density_noisy_carry_dyn2", |b| {
        let noise = NoiseModel::device_like(1.0);
        b.iter(|| exact_distribution_noisy(d2.circuit(), &noise))
    });
    g.bench_function("trajectory_noisy_256_shots_carry_dyn2", |b| {
        let exec = Executor::new()
            .shots(256)
            .seed(2)
            .noise(NoiseModel::device_like(1.0));
        b.iter(|| exec.run(d2.circuit()))
    });
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
