//! Criterion benchmarks: dynamic transformation throughput.

use bench::runners::transform_both;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dqc::QubitRoles;
use dqc::{transform, transform_with_scheme, DynamicScheme, TransformOptions};
use qalgo::suites::{toffoli_free_suite, toffoli_suite};
use qalgo::{dj_circuit, TruthTable};
use qcir::decompose::decompose_mcx;
use qcir::Qubit;

fn bench_schemes(c: &mut Criterion) {
    let suite = toffoli_suite();
    let carry = suite.iter().find(|b| b.name == "CARRY").unwrap().clone();
    let mut g = c.benchmark_group("transform");
    g.bench_function("dynamic1_carry", |b| {
        b.iter(|| {
            transform_with_scheme(
                &carry.circuit,
                &carry.roles,
                DynamicScheme::Dynamic1,
                &TransformOptions::default(),
            )
            .unwrap()
        })
    });
    g.bench_function("dynamic2_carry", |b| {
        b.iter(|| {
            transform_with_scheme(
                &carry.circuit,
                &carry.roles,
                DynamicScheme::Dynamic2,
                &TransformOptions::default(),
            )
            .unwrap()
        })
    });
    g.bench_function("both_schemes_all_table2", |b| {
        b.iter_batched(
            toffoli_suite,
            |suite| {
                for bench in &suite {
                    let _ = transform_both(bench);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("direct_all_table1", |b| {
        b.iter_batched(
            toffoli_free_suite,
            |suite| {
                for bench in &suite {
                    let _ = transform(&bench.circuit, &bench.roles, &TransformOptions::default())
                        .unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("mcx5_ladder_dynamic1", |b| {
        let dj = dj_circuit(&TruthTable::and(5));
        let lowered = decompose_mcx(&dj);
        let extra = lowered.num_qubits() - dj.num_qubits();
        let mut data: Vec<Qubit> = (0..5).map(Qubit::new).collect();
        data.extend((0..extra).map(|i| Qubit::new(dj.num_qubits() + i)));
        let roles = QubitRoles::new(data, Vec::new(), vec![Qubit::new(5)]);
        // Dynamic-2 hits a cyclic dependency on ladder uncomputation (see
        // EXPERIMENTS.md); dynamic-1 realizes the ladder fine.
        b.iter(|| {
            transform_with_scheme(
                &lowered,
                &roles,
                DynamicScheme::Dynamic1,
                &TransformOptions::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
