//! Criterion benchmarks: end-to-end table/figure regeneration.

use bench::runners::{fig7, mct_sweep, noise_sweep, table1, table2};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(table1));
    g.bench_function("table2", |b| b.iter(table2));
    g.bench_function("fig7_256_shots", |b| b.iter(|| fig7(256, 1)));
    g.bench_function("noise_sweep_two_points", |b| {
        b.iter(|| noise_sweep(&[0.0, 1.0]))
    });
    g.bench_function("mct_sweep_to_4", |b| b.iter(|| mct_sweep(4)));
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
