//! Grover search, and where the dynamic design space ends.
//!
//! Grover's iterate re-uses every data qubit across rounds, with
//! non-diagonal gates (the diffusion Hadamards) between the oracle phases.
//! Algorithm 1 still produces a 2-qubit realization — every multi-qubit
//! phase is classicalized — but the approximation destroys amplitude
//! amplification, collapsing the output to near-uniform. The tests pin
//! down this boundary of the design space explicitly.

use qcir::{Circuit, Qubit};

/// Builds a traditional Grover circuit over `n` qubits searching for the
/// computational basis state `marked`, running `iterations` rounds.
///
/// The oracle and the diffusion use an `(n-1)`-controlled Z built from an
/// `H`-conjugated multi-control X on the last qubit; no ancillas and no
/// measurements are appended.
///
/// # Panics
///
/// Panics if `n < 2` or `marked >= 2^n`.
///
/// # Examples
///
/// ```
/// use qalgo::grover_circuit;
/// let c = grover_circuit(0b10, 2, 1);
/// assert_eq!(c.num_qubits(), 2);
/// ```
#[must_use]
pub fn grover_circuit(marked: usize, n: usize, iterations: usize) -> Circuit {
    assert!(n >= 2, "grover needs at least two qubits");
    assert!(marked < (1 << n), "marked state out of range");
    let mut c = Circuit::with_name(format!("grover_{marked:b}"), n, 0);
    for j in 0..n {
        c.h(Qubit::new(j));
    }
    for _ in 0..iterations {
        // Oracle: phase-flip |marked>.
        flip_zeros(&mut c, marked, n);
        controlled_z_all(&mut c, n);
        flip_zeros(&mut c, marked, n);
        // Diffusion: reflect about the mean.
        for j in 0..n {
            c.h(Qubit::new(j));
        }
        flip_zeros(&mut c, 0, n);
        controlled_z_all(&mut c, n);
        flip_zeros(&mut c, 0, n);
        for j in 0..n {
            c.h(Qubit::new(j));
        }
    }
    c
}

/// The optimal iteration count `round(pi/4 * sqrt(2^n))` (minus the usual
/// half-step correction) for a single marked item.
#[must_use]
pub fn optimal_iterations(n: usize) -> usize {
    let amp = 1.0 / ((1u64 << n) as f64).sqrt();
    let angle = amp.asin();
    ((std::f64::consts::FRAC_PI_2 / (2.0 * angle) - 0.5).round() as usize).max(1)
}

/// X on every qubit whose bit of `pattern` is 0 (oracle sandwich).
fn flip_zeros(c: &mut Circuit, pattern: usize, n: usize) {
    for j in 0..n {
        if pattern & (1 << j) == 0 {
            c.x(Qubit::new(j));
        }
    }
}

/// A Z controlled on all other qubits, targeting the last qubit.
fn controlled_z_all(c: &mut Circuit, n: usize) {
    let target = Qubit::new(n - 1);
    match n {
        2 => {
            c.cz(Qubit::new(0), target);
        }
        3 => {
            c.ccz(Qubit::new(0), Qubit::new(1), target);
        }
        _ => {
            let controls: Vec<Qubit> = (0..n - 1).map(Qubit::new).collect();
            c.h(target);
            c.mcx(&controls, target);
            c.h(target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc::{transform, QubitRoles, TransformOptions};
    use qsim::branch::exact_distribution_with_final_measure;

    fn all_qubits(n: usize) -> Vec<Qubit> {
        (0..n).map(Qubit::new).collect()
    }

    #[test]
    fn two_qubit_grover_finds_marked_with_certainty() {
        for marked in 0..4usize {
            let c = grover_circuit(marked, 2, 1);
            let dist = exact_distribution_with_final_measure(&c, &all_qubits(2));
            let key = format!("{marked:02b}");
            assert!((dist.get(&key) - 1.0).abs() < 1e-9, "{marked}: {dist}");
        }
    }

    #[test]
    fn three_qubit_grover_amplifies_marked() {
        let c = grover_circuit(0b101, 3, optimal_iterations(3));
        let dist = exact_distribution_with_final_measure(&c, &all_qubits(3));
        assert!(dist.get("101") > 0.9, "{dist}");
    }

    #[test]
    fn optimal_iterations_grow_with_register() {
        assert_eq!(optimal_iterations(2), 1);
        assert_eq!(optimal_iterations(3), 2);
        assert!(optimal_iterations(6) >= 5);
    }

    #[test]
    fn single_data_qubit_grover_transforms_exactly() {
        // Degenerate but instructive: with one data qubit nothing is
        // classicalized, so the transformation is a pure wire relabeling
        // and even Grover survives exactly.
        let c = grover_circuit(0b10, 2, 1);
        let roles = QubitRoles::data_plus_answer(2);
        let d = transform(&c, &roles, &TransformOptions::default()).unwrap();
        let mut dyn_measured = qcir::Circuit::new(2, 2);
        dyn_measured.extend(d.circuit());
        dyn_measured.measure(d.answer_qubits()[0], qcir::Clbit::new(1));
        let dyn_dist = qsim::branch::exact_distribution(&dyn_measured);
        assert!((dyn_dist.get("10") - 1.0).abs() < 1e-9, "{dyn_dist}");
    }

    #[test]
    fn dynamic_grover_is_realizable_but_inaccurate() {
        // Boundary of the design space: Algorithm 1 accepts 3-qubit Grover
        // (the CCZ controls classicalize) but the classically controlled
        // phases are conditioned on end-of-circuit measurements, so the
        // amplitude amplification collapses.
        let n = 3;
        let marked = 0b101;
        let c = grover_circuit(marked, n, optimal_iterations(n));
        let roles = QubitRoles::data_plus_answer(n);
        let d = transform(&c, &roles, &TransformOptions::default()).unwrap();
        assert_eq!(d.circuit().num_qubits(), 2);

        // Traditional amplifies to > 0.9 (see the test above); dynamic
        // does not come close.
        let mut dyn_measured = qcir::Circuit::new(2, 3);
        dyn_measured.extend(d.circuit());
        dyn_measured.measure(d.answer_qubits()[0], qcir::Clbit::new(2));
        let dyn_dist = qsim::branch::exact_distribution(&dyn_measured);
        let p_marked = dyn_dist.get("101");
        assert!(
            p_marked < 0.9,
            "dynamic grover unexpectedly accurate: {dyn_dist}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn marked_state_must_fit() {
        let _ = grover_circuit(4, 2, 1);
    }

    #[test]
    #[should_panic(expected = "at least two qubits")]
    fn single_qubit_rejected() {
        let _ = grover_circuit(0, 1, 1);
    }
}
