//! Deutsch-Jozsa circuits.
//!
//! DJ decides in one query whether an oracle function is constant or
//! balanced: prepare the answer in `|->`, Hadamard the data register, apply
//! the phase-kickback oracle, Hadamard back. A constant function returns
//! the all-zeros string with certainty; a balanced one never does.
//!
//! The paper additionally evaluates DJ on functions that are *neither*
//! (AND, OR, ...), where the output is a distribution; its Fig. 7 tracks
//! the probability of the most likely ("expected") outcome.

use crate::oracle::TruthTable;
use qcir::{Circuit, Qubit};

/// Builds the traditional DJ circuit for `oracle`.
///
/// Layout: data qubits `0..n` (oracle input `i` on qubit `i`), answer qubit
/// `n`. The oracle is synthesized at the X/CX/CCX/MCX level from the PPRM
/// expansion; no measurements are appended.
///
/// # Examples
///
/// ```
/// use qalgo::{dj_circuit, TruthTable};
/// let c = dj_circuit(&TruthTable::and(2));
/// assert_eq!(c.num_qubits(), 3);
/// // X,H prep + 2 H + CCX + 2 H.
/// assert_eq!(c.len(), 7);
/// ```
#[must_use]
pub fn dj_circuit(oracle: &TruthTable) -> Circuit {
    let n = oracle.num_inputs();
    let ans = Qubit::new(n);
    let mut c = Circuit::with_name("dj", n + 1, 0);
    c.x(ans).h(ans);
    for i in 0..n {
        c.h(Qubit::new(i));
    }
    let inputs: Vec<Qubit> = (0..n).map(Qubit::new).collect();
    c.extend(&oracle.synthesize(&inputs, ans));
    for i in 0..n {
        c.h(Qubit::new(i));
    }
    c
}

/// The conclusion DJ draws from a measured data-register outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DjVerdict {
    /// All-zeros outcome: the function is (behaving as) constant.
    Constant,
    /// Any other outcome: the function is not constant.
    NotConstant,
}

/// Interprets a measured data-register bitstring.
#[must_use]
pub fn dj_verdict(outcome: &str) -> DjVerdict {
    if outcome.chars().all(|c| c == '0') {
        DjVerdict::Constant
    } else {
        DjVerdict::NotConstant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc::{transform, verify, QubitRoles, TransformOptions};
    use qsim::branch::exact_distribution_with_final_measure;

    fn data_qubits(n: usize) -> Vec<Qubit> {
        (0..n).map(Qubit::new).collect()
    }

    #[test]
    fn constant_functions_give_all_zeros() {
        for value in [false, true] {
            let c = dj_circuit(&TruthTable::constant(2, value));
            let dist = exact_distribution_with_final_measure(&c, &data_qubits(2));
            assert!((dist.get("00") - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn balanced_functions_never_give_all_zeros() {
        for tt in [
            TruthTable::xor(2),
            TruthTable::pass(2, 0),
            TruthTable::pass(2, 1).complement(),
            TruthTable::xor(3),
        ] {
            assert!(tt.is_balanced());
            let n = tt.num_inputs();
            let c = dj_circuit(&tt);
            let dist = exact_distribution_with_final_measure(&c, &data_qubits(n));
            let zeros = "0".repeat(n);
            assert!(dist.get(&zeros) < 1e-10, "{tt}: {dist}");
        }
    }

    #[test]
    fn xor_gives_all_ones_deterministically() {
        let c = dj_circuit(&TruthTable::xor(2));
        let dist = exact_distribution_with_final_measure(&c, &data_qubits(2));
        assert!((dist.get("11") - 1.0).abs() < 1e-10);
    }

    #[test]
    fn and_gives_uniform_distribution() {
        // AND is neither constant nor balanced; DJ yields the uniform
        // distribution over all four outcomes.
        let c = dj_circuit(&TruthTable::and(2));
        let dist = exact_distribution_with_final_measure(&c, &data_qubits(2));
        for key in ["00", "01", "10", "11"] {
            assert!((dist.get(key) - 0.25).abs() < 1e-10, "{dist}");
        }
    }

    #[test]
    fn majority_concentrates_on_odd_parity() {
        // MAJ's Fourier support: outcomes 001, 010, 100, 111 at 1/4 each.
        let c = dj_circuit(&TruthTable::majority3());
        let dist = exact_distribution_with_final_measure(&c, &data_qubits(3));
        for key in ["001", "010", "100", "111"] {
            assert!((dist.get(key) - 0.25).abs() < 1e-10, "{dist}");
        }
        assert!(dist.get("000") < 1e-10);
    }

    #[test]
    fn gate_counts_match_table_one_and_two() {
        // Toffoli-free rows of Table I (after Clifford+T lowering these are
        // already final since no Toffoli is present).
        assert_eq!(dj_circuit(&TruthTable::constant(2, false)).len(), 6);
        assert_eq!(dj_circuit(&TruthTable::constant(2, true)).len(), 7);
        assert_eq!(dj_circuit(&TruthTable::pass(2, 0)).len(), 7);
        assert_eq!(dj_circuit(&TruthTable::pass(2, 0).complement()).len(), 8);
        assert_eq!(dj_circuit(&TruthTable::xor(2)).len(), 8);
        assert_eq!(dj_circuit(&TruthTable::xor(2).complement()).len(), 9);
        // Toffoli rows of Table II, at the CCX level: the paper's counts
        // (21, 22, ...) are after 15-gate Clifford+T lowering, i.e.
        // len + 14 per Toffoli.
        assert_eq!(dj_circuit(&TruthTable::and(2)).len(), 7); // 7 + 14 = 21
        assert_eq!(dj_circuit(&TruthTable::and(2).complement()).len(), 8); // 22
        assert_eq!(dj_circuit(&TruthTable::or(2)).len(), 9); // 23
        assert_eq!(dj_circuit(&TruthTable::majority3()).len(), 11); // 11 + 42 = 53
    }

    #[test]
    fn dynamic_transformation_is_exact_for_toffoli_free_dj() {
        for tt in [
            TruthTable::constant(2, true),
            TruthTable::pass(2, 1),
            TruthTable::xor(2),
            TruthTable::xor(3),
        ] {
            let c = dj_circuit(&tt);
            let roles = QubitRoles::data_plus_answer(tt.num_inputs() + 1);
            let d = transform(&c, &roles, &TransformOptions::default()).unwrap();
            let report = verify::compare(&c, &roles, &d);
            assert!(report.equivalent(1e-10), "{tt}: {report}");
        }
    }

    #[test]
    fn verdict_classifies_outcomes() {
        assert_eq!(dj_verdict("000"), DjVerdict::Constant);
        assert_eq!(dj_verdict("010"), DjVerdict::NotConstant);
        assert_eq!(dj_verdict(""), DjVerdict::Constant);
    }
}
