//! Simon's algorithm, end to end.
//!
//! Simon's problem: given a 2-to-1 function with `f(x) = f(x xor s)`,
//! recover the secret period `s`. The quantum circuit is Toffoli-free —
//! Hadamards on the data register plus a `CX` network into an output
//! register — which makes it another exact instance for the dynamic
//! transformation: `2n` qubits collapse to `n + 1` (one data qubit plus the
//! `n` output qubits, which play the answer role).
//!
//! The classical half (accumulating orthogonal equations and solving over
//! GF(2)) is included, so [`run_simon`] is a complete hybrid algorithm.

use qcir::{Circuit, Clbit, Qubit};
use qsim::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the standard Simon oracle for secret `s` over `n = s.len()` bits:
/// `|x>|y> -> |x>|y xor f(x)>` with `f(x) = min(x, x xor s)` — a canonical
/// 2-to-1 function with period `s` (1-to-1 when `s = 0`).
///
/// Layout: data `0..n`, output `n..2n`. Construction: copy `x` into the
/// output, then, conditioned on the highest set bit of `s` (the pivot),
/// XOR `s` into the output — giving `f(x) = x` when the pivot bit is 0 and
/// `x xor s` when 1, which identifies the two preimages.
///
/// # Panics
///
/// Panics if `s` is empty.
#[must_use]
pub fn simon_oracle(s: &[bool]) -> Circuit {
    let n = s.len();
    assert!(n > 0, "secret must be non-empty");
    let mut c = Circuit::with_name("simon_oracle", 2 * n, 0);
    for i in 0..n {
        c.cx(Qubit::new(i), Qubit::new(n + i));
    }
    if let Some(pivot) = s.iter().rposition(|&b| b) {
        for (i, &bit) in s.iter().enumerate() {
            if bit {
                c.cx(Qubit::new(pivot), Qubit::new(n + i));
            }
        }
    }
    c
}

/// Builds the full Simon circuit: Hadamard the data register, apply the
/// oracle, Hadamard back. Measuring the data register yields a uniformly
/// random `y` with `y . s = 0 (mod 2)`.
#[must_use]
pub fn simon_circuit(s: &[bool]) -> Circuit {
    let n = s.len();
    let mut c = Circuit::with_name("simon", 2 * n, 0);
    for i in 0..n {
        c.h(Qubit::new(i));
    }
    c.extend(&simon_oracle(s));
    for i in 0..n {
        c.h(Qubit::new(i));
    }
    c
}

/// Solves the homogeneous GF(2) system: given independent equations
/// `y . s = 0`, returns the nonzero null-space vector when the equations
/// have rank `n - 1`, or `None` when the system is under-determined (or
/// only `s = 0` is consistent).
///
/// Rows are bit vectors over `n` variables, LSB = variable 0.
#[must_use]
pub fn solve_gf2_nullspace(rows: &[u64], n: usize) -> Option<Vec<bool>> {
    // Gaussian elimination to row echelon form.
    let mut basis: Vec<u64> = Vec::new();
    for &row in rows {
        let mut r = row & ((1u64 << n) - 1);
        for &b in &basis {
            let pivot = 63 - b.leading_zeros() as usize;
            if r & (1 << pivot) != 0 {
                r ^= b;
            }
        }
        if r != 0 {
            basis.push(r);
            basis.sort_unstable_by(|a, b| b.cmp(a));
        }
    }
    if basis.len() != n - 1 {
        return None;
    }
    // The pivot positions of the basis; the single free variable is the
    // missing position.
    let pivots: Vec<usize> = basis
        .iter()
        .map(|&b| 63 - b.leading_zeros() as usize)
        .collect();
    let free = (0..n).find(|p| !pivots.contains(p))?;
    // Back-substitute with s[free] = 1.
    let mut s = 1u64 << free;
    for &b in basis.iter().rev() {
        let pivot = 63 - b.leading_zeros() as usize;
        let parity = (b & s).count_ones() % 2;
        if parity == 1 {
            s |= 1 << pivot;
        }
    }
    Some((0..n).map(|i| s & (1 << i) != 0).collect())
}

/// Runs the complete hybrid Simon algorithm against a simulator: sample
/// data-register outcomes, accumulate independent orthogonality equations,
/// solve for `s`. Returns `None` when `max_rounds` quantum queries did not
/// produce a full-rank system (overwhelmingly unlikely for the sizes here).
///
/// # Panics
///
/// Panics if `s` is empty or all-zero (Simon's promise requires `s != 0`).
#[must_use]
pub fn run_simon(s: &[bool], max_rounds: usize, seed: u64) -> Option<Vec<bool>> {
    let n = s.len();
    assert!(s.iter().any(|&b| b), "simon requires a nonzero secret");
    let mut circuit = Circuit::new(2 * n, n);
    circuit.extend(&simon_circuit(s));
    for i in 0..n {
        circuit.measure(Qubit::new(i), Clbit::new(i));
    }
    let exec = Executor::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<u64> = Vec::new();
    for _ in 0..max_rounds {
        let bits = exec.run_shot(&circuit, &mut rng);
        let mut y = 0u64;
        for (i, &b) in bits.iter().enumerate().take(n) {
            if b {
                y |= 1 << i;
            }
        }
        if y != 0 {
            rows.push(y);
        }
        if let Some(candidate) = solve_gf2_nullspace(&rows, n) {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc::{transform, verify, QubitRoles, TransformOptions};
    use qsim::branch::exact_distribution_with_final_measure;
    use qsim::StateVector;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn oracle_is_two_to_one_with_period_s() {
        for s_str in ["10", "11", "110", "101"] {
            let s = bits(s_str);
            let n = s.len();
            let circ = simon_oracle(&s);
            let s_val: usize = s
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| 1 << i)
                .sum();
            let f = |x: usize| -> usize {
                // Evaluate the oracle on |x>|0> and read the output register.
                let mut sv = StateVector::basis_state(2 * n, x);
                for inst in circ.iter() {
                    let qs: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
                    sv.apply_gate(inst.as_gate().unwrap(), &qs);
                }
                let idx = sv.probabilities().iter().position(|&p| p > 0.5).unwrap();
                idx >> n
            };
            for x in 0..1usize << n {
                assert_eq!(f(x), f(x ^ s_val), "s={s_str}, x={x:b}");
            }
            // 2-to-1: image has half the size.
            let image: std::collections::BTreeSet<usize> = (0..1usize << n).map(f).collect();
            assert_eq!(image.len(), 1 << (n - 1), "s={s_str}");
        }
    }

    #[test]
    fn measured_outcomes_are_orthogonal_to_s() {
        let s = bits("101");
        let circ = simon_circuit(&s);
        let data: Vec<Qubit> = (0..3).map(Qubit::new).collect();
        let dist = exact_distribution_with_final_measure(&circ, &data);
        for (key, p) in dist.iter() {
            if p < 1e-12 {
                continue;
            }
            // key is MSB-first over the data bits.
            let y: usize = usize::from_str_radix(key, 2).unwrap();
            let s_val = 0b101usize;
            assert_eq!((y & s_val).count_ones() % 2, 0, "outcome {key}");
        }
    }

    #[test]
    fn gf2_solver_recovers_nullspace() {
        // n = 3, s = 101: orthogonal space spanned by {010, 101... } rows
        // y with y.s = 0: {000, 010, 101, 111}.
        let rows = [0b010u64, 0b111];
        let s = solve_gf2_nullspace(&rows, 3).unwrap();
        assert_eq!(s, bits("101"));
    }

    #[test]
    fn gf2_solver_reports_underdetermined_systems() {
        assert!(solve_gf2_nullspace(&[0b010], 3).is_none());
        assert!(solve_gf2_nullspace(&[], 2).is_none());
        // Redundant rows do not add rank (n = 3 needs two independent).
        assert!(solve_gf2_nullspace(&[0b011, 0b011], 3).is_none());
        // While a single row is already full rank for n = 2.
        assert_eq!(solve_gf2_nullspace(&[0b01], 2), Some(vec![false, true]));
    }

    #[test]
    fn full_algorithm_recovers_the_secret() {
        for s_str in ["11", "10", "101", "110", "1001"] {
            let s = bits(s_str);
            let found = run_simon(&s, 200, 42).expect("should converge");
            assert_eq!(found, s, "secret {s_str}");
        }
    }

    #[test]
    fn dynamic_simon_is_exactly_equivalent() {
        // Data qubits become iterations; the n output qubits are answers.
        for s_str in ["11", "101"] {
            let s = bits(s_str);
            let n = s.len();
            let circ = simon_circuit(&s);
            let roles = QubitRoles::new(
                (0..n).map(Qubit::new).collect(),
                Vec::new(),
                (n..2 * n).map(Qubit::new).collect(),
            );
            let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
            assert_eq!(d.circuit().num_qubits(), n + 1);
            let report = verify::compare_with_answers(&circ, &roles, &d);
            assert!(report.equivalent(1e-9), "s={s_str}: {report}");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero secret")]
    fn zero_secret_rejected() {
        let _ = run_simon(&bits("00"), 10, 1);
    }
}
