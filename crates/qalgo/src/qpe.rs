//! Quantum phase estimation.
//!
//! QPE was the first algorithm demonstrated as a dynamic circuit (Córcoles
//! et al., the paper's reference [3]): the inverse QFT that closes the
//! counting register is exactly the structure Algorithm 1 classicalizes —
//! each controlled phase is diagonal, so replacing its quantum control with
//! a measured bit is *exact* (the semiclassical QFT of Griffiths and Niu).
//! This module provides the traditional circuit so the generic transform
//! can re-derive iterative QPE automatically.

use qcir::{Circuit, Qubit};
use std::f64::consts::PI;

/// Builds a traditional QPE circuit estimating the phase of `P(2*pi*theta)`
/// on its `|1>` eigenstate, with an `n_bits`-qubit counting register.
///
/// Layout: counting qubits `0..n_bits` (bit `j` of the estimate ends on
/// qubit `j`), eigenstate (answer) qubit `n_bits`, prepared `|1>`. The
/// inverse QFT is emitted without terminal swaps; no measurements are
/// appended.
///
/// # Panics
///
/// Panics if `n_bits == 0`.
///
/// # Examples
///
/// ```
/// use qalgo::qpe_circuit;
/// let c = qpe_circuit(0.25, 3);
/// assert_eq!(c.num_qubits(), 4);
/// ```
#[must_use]
pub fn qpe_circuit(theta: f64, n_bits: usize) -> Circuit {
    assert!(n_bits > 0, "need at least one counting bit");
    let ans = Qubit::new(n_bits);
    let mut c = Circuit::with_name("qpe", n_bits + 1, 0);
    c.x(ans);
    for j in 0..n_bits {
        c.h(Qubit::new(j));
    }
    // Counting qubit j accumulates e^{2 pi i theta 2^(n-1-j)} so that the
    // inverse QFT leaves bit j of the estimate on qubit j.
    for j in 0..n_bits {
        let power = 1u64 << (n_bits - 1 - j);
        c.cp(2.0 * PI * theta * power as f64, Qubit::new(j), ans);
    }
    inverse_qft_no_swap(&mut c, n_bits);
    c
}

/// Appends the swap-free inverse QFT over qubits `0..n` (qubit 0 first):
/// each qubit receives phase corrections controlled by all lower qubits,
/// then a Hadamard — the gate order whose dynamic transformation is the
/// semiclassical QFT.
fn inverse_qft_no_swap(c: &mut Circuit, n: usize) {
    for j in 0..n {
        for k in 0..j {
            let angle = -PI / (1u64 << (j - k)) as f64;
            c.cp(angle, Qubit::new(k), Qubit::new(j));
        }
        c.h(Qubit::new(j));
    }
}

/// Interprets a measured counting register (bit `j` of the key counting
/// from the right) as the phase estimate `m / 2^n`.
///
/// # Panics
///
/// Panics on non-binary characters.
#[must_use]
pub fn estimate_from_bits(key: &str) -> f64 {
    let n = key.len();
    let m = u64::from_str_radix(key, 2).expect("binary outcome key");
    m as f64 / (1u64 << n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc::{transform, verify, QubitRoles, TransformOptions};
    use qsim::branch::exact_distribution_with_final_measure;

    fn counting_qubits(n: usize) -> Vec<Qubit> {
        (0..n).map(Qubit::new).collect()
    }

    #[test]
    fn exact_phases_are_estimated_deterministically() {
        for n in 1..=4usize {
            for m in 0..(1usize << n) {
                let theta = m as f64 / (1u64 << n) as f64;
                let c = qpe_circuit(theta, n);
                let dist = exact_distribution_with_final_measure(&c, &counting_qubits(n));
                let expect = format!("{m:0n$b}");
                assert!(
                    (dist.get(&expect) - 1.0).abs() < 1e-9,
                    "theta={theta}, n={n}: {dist}"
                );
            }
        }
    }

    #[test]
    fn inexact_phase_concentrates_near_truth() {
        let theta = 0.3;
        let n = 4;
        let c = qpe_circuit(theta, n);
        let dist = exact_distribution_with_final_measure(&c, &counting_qubits(n));
        let best = dist.argmax().unwrap().to_string();
        let est = estimate_from_bits(&best);
        assert!((est - theta).abs() <= 1.0 / 16.0, "estimate {est}");
    }

    #[test]
    fn dynamic_qpe_equals_semiclassical_qpe_exactly() {
        // The headline extension result: the generic transform re-derives
        // iterative (semiclassical) QPE with zero approximation error, for
        // both exact and inexact phases.
        for (theta, n) in [(0.25, 2), (0.625, 3), (0.3, 3)] {
            let c = qpe_circuit(theta, n);
            let roles = QubitRoles::data_plus_answer(n + 1);
            let d = transform(&c, &roles, &TransformOptions::default()).unwrap();
            assert_eq!(d.circuit().num_qubits(), 2);
            let report = verify::compare(&c, &roles, &d);
            assert!(report.equivalent(1e-9), "theta={theta}, n={n}: {report}");
        }
    }

    #[test]
    fn dynamic_qpe_uses_conditioned_phase_gates() {
        let c = qpe_circuit(0.3, 3);
        let roles = QubitRoles::data_plus_answer(4);
        let d = transform(&c, &roles, &TransformOptions::default()).unwrap();
        let conditioned_p = d
            .circuit()
            .iter()
            .filter(|i| i.is_conditioned() && i.kind().name() == "p")
            .count();
        // Inverse QFT over 3 qubits has 3 controlled phases, all of which
        // become classically controlled.
        assert_eq!(conditioned_p, 3);
    }

    #[test]
    fn estimate_parses_binary_keys() {
        assert_eq!(estimate_from_bits("10"), 0.5);
        assert_eq!(estimate_from_bits("01"), 0.25);
        assert_eq!(estimate_from_bits("0000"), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one counting bit")]
    fn zero_bits_rejected() {
        let _ = qpe_circuit(0.5, 0);
    }
}
