//! Quantum teleportation — the original dynamic quantum circuit.
//!
//! Teleportation is the canonical use of every DQC primitive this workspace
//! models: mid-circuit measurement of two qubits and classically controlled
//! X/Z corrections on the receiver. It predates the paper's transformation
//! (nothing here needs Algorithm 1) but exercises the full simulator stack
//! and makes a natural example of hand-written dynamic circuits.

use qcir::{Circuit, Clbit, Gate, Qubit};

/// Builds a teleportation circuit for an arbitrary sender state prepared by
/// `prepare` (a closure adding gates on qubit 0).
///
/// Layout: qubit 0 = sender's message, qubit 1 = sender's half of the Bell
/// pair, qubit 2 = receiver. Classical bits 0 (X correction) and 1 (Z
/// correction) hold the Bell measurement outcomes. After execution, qubit 2
/// carries the prepared state exactly, for every measurement outcome.
///
/// # Examples
///
/// ```
/// use qalgo::teleport_circuit;
/// let c = teleport_circuit(|c, q| { c.h(q); });
/// assert_eq!(c.num_qubits(), 3);
/// assert!(c.is_dynamic());
/// ```
#[must_use]
pub fn teleport_circuit(prepare: impl FnOnce(&mut Circuit, Qubit)) -> Circuit {
    let (msg, alice, bob) = (Qubit::new(0), Qubit::new(1), Qubit::new(2));
    let mut c = Circuit::with_name("teleport", 3, 2);
    prepare(&mut c, msg);
    // Shared Bell pair.
    c.h(alice).cx(alice, bob);
    // Bell measurement of (msg, alice).
    c.cx(msg, alice).h(msg);
    c.measure(alice, Clbit::new(0));
    c.measure(msg, Clbit::new(1));
    // Classically controlled corrections.
    c.x_if(bob, Clbit::new(0));
    c.gate_if(Gate::Z, &[bob], qcir::Condition::bit(Clbit::new(1)));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::{Executor, PauliString, StateVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs one teleportation shot and returns the receiver's reduced
    /// state's expectation values (X, Y, Z).
    fn teleported_pauli_triple(
        prepare: impl Fn(&mut Circuit, Qubit) + Copy,
        seed: u64,
    ) -> (f64, f64, f64) {
        let circ = teleport_circuit(prepare);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_bits, state) = Executor::new().run_shot_with_state(&circ, &mut rng);
        let expect = |obs: &str| -> f64 {
            let p: PauliString = obs.parse().unwrap();
            p.expectation(&state)
        };
        (expect("IIX"), expect("IIY"), expect("IIZ"))
    }

    /// The same triple measured directly on the prepared single-qubit state.
    fn prepared_pauli_triple(prepare: impl Fn(&mut Circuit, Qubit) + Copy) -> (f64, f64, f64) {
        let mut c = Circuit::new(1, 0);
        prepare(&mut c, Qubit::new(0));
        let mut sv = StateVector::zero_state(1);
        for inst in c.iter() {
            sv.apply_gate(inst.as_gate().unwrap(), &[0]);
        }
        let expect = |obs: &str| -> f64 {
            let p: PauliString = obs.parse().unwrap();
            p.expectation(&sv)
        };
        (expect("X"), expect("Y"), expect("Z"))
    }

    #[test]
    fn teleportation_preserves_bloch_vector_for_many_states() {
        let preparations: Vec<fn(&mut Circuit, Qubit)> = vec![
            |_, _| {}, // |0>
            |c, q| {
                c.x(q);
            }, // |1>
            |c, q| {
                c.h(q);
            }, // |+>
            |c, q| {
                c.h(q);
                c.s(q);
            }, // |+i>
            |c, q| {
                c.h(q);
                c.t(q);
            }, // non-Clifford state
        ];
        for (i, prep) in preparations.into_iter().enumerate() {
            let want = prepared_pauli_triple(prep);
            // Every shot must reproduce the state exactly (teleportation is
            // deterministic in effect, random only in its record bits).
            for seed in 0..6u64 {
                let got = teleported_pauli_triple(prep, seed + 100 * i as u64);
                assert!(
                    (got.0 - want.0).abs() < 1e-9
                        && (got.1 - want.1).abs() < 1e-9
                        && (got.2 - want.2).abs() < 1e-9,
                    "prep {i}, seed {seed}: got {got:?}, want {want:?}"
                );
            }
        }
    }

    #[test]
    fn all_four_correction_branches_occur() {
        let circ = teleport_circuit(|c, q| {
            c.h(q);
        });
        let counts = Executor::new().shots(2000).seed(5).run(&circ);
        assert_eq!(counts.len(), 4, "{counts}");
        for (_, n) in counts.iter() {
            assert!(n > 300, "{counts}");
        }
    }

    #[test]
    fn teleport_circuit_uses_every_dynamic_primitive() {
        let circ = teleport_circuit(|_, _| {});
        let stats = qcir::CircuitStats::of(&circ);
        assert_eq!(stats.measure_count, 2);
        assert_eq!(stats.conditioned_count, 2);
        assert!(circ.is_dynamic());
    }
}
