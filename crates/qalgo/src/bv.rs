//! Bernstein-Vazirani circuits.
//!
//! BV finds a hidden string `s` from the oracle `f(x) = s·x (mod 2)` in one
//! query. The circuit prepares the answer qubit in `|->`, Hadamards the
//! active data qubits, applies `CX` from each data qubit with `s_i = 1`,
//! and Hadamards back; the data register then reads `s` deterministically.
//!
//! Data qubits with `s_i = 0` receive no gates at all — the `H...H` pair is
//! the identity — matching the gate counts of the paper's Table I.

use qcir::{Circuit, Qubit};

/// Builds the traditional BV circuit for `hidden` (`hidden[i]` is `s_i`).
///
/// Layout: data qubits `0..n`, answer qubit `n`. No measurements are
/// appended (the paper's table metrics exclude them; simulation helpers add
/// them as needed).
///
/// # Panics
///
/// Panics if `hidden` is empty.
///
/// # Examples
///
/// ```
/// use qalgo::bv_circuit;
/// let c = bv_circuit(&[true, true, true]);
/// assert_eq!(c.num_qubits(), 4);
/// assert_eq!(c.len(), 11); // X,H prep + 3 x (H, CX, H)
/// ```
#[must_use]
pub fn bv_circuit(hidden: &[bool]) -> Circuit {
    assert!(!hidden.is_empty(), "hidden string must be non-empty");
    let n = hidden.len();
    let ans = Qubit::new(n);
    let mut c = Circuit::with_name(format!("bv_{}", string_of(hidden)), n + 1, 0);
    c.x(ans).h(ans);
    for (i, &bit) in hidden.iter().enumerate() {
        if bit {
            let d = Qubit::new(i);
            c.h(d).cx(d, ans).h(d);
        }
    }
    c
}

/// Renders a hidden string the way the paper names its benchmarks:
/// `s_{n-1} ... s_0` would be ambiguous, so we follow the benchmark names
/// (`BV_110` has `s_0 = 1, s_1 = 1, s_2 = 0`), i.e. index 0 leftmost.
#[must_use]
pub fn string_of(hidden: &[bool]) -> String {
    hidden.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Parses a benchmark-style hidden string (`"110"` → `[true, true, false]`).
///
/// # Panics
///
/// Panics on characters other than `0`/`1`.
#[must_use]
pub fn parse_hidden(s: &str) -> Vec<bool> {
    s.chars()
        .map(|c| match c {
            '0' => false,
            '1' => true,
            other => panic!("invalid hidden-string character '{other}'"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc::{transform, verify, QubitRoles, TransformOptions};
    use qsim::branch::exact_distribution_with_final_measure;

    #[test]
    fn gate_counts_match_table_one() {
        // (hidden, paper gate count)
        for (s, gates) in [
            ("111", 11),
            ("110", 8),
            ("101", 8),
            ("100", 5),
            ("001", 5),
            ("1111", 14),
            ("1010", 8),
            ("0001", 5),
        ] {
            let c = bv_circuit(&parse_hidden(s));
            assert_eq!(c.len(), gates, "BV_{s}");
        }
    }

    #[test]
    fn qubit_counts_match_table_one() {
        assert_eq!(bv_circuit(&parse_hidden("101")).num_qubits(), 4);
        assert_eq!(bv_circuit(&parse_hidden("1011")).num_qubits(), 5);
    }

    #[test]
    fn depth_matches_table_one() {
        for (s, depth) in [("111", 6), ("110", 5), ("001", 4), ("1111", 7)] {
            let c = bv_circuit(&parse_hidden(s));
            assert_eq!(qcir::depth(&c), depth, "BV_{s}");
        }
    }

    #[test]
    fn bv_recovers_the_hidden_string_deterministically() {
        for s in ["11", "101", "0110"] {
            let hidden = parse_hidden(s);
            let c = bv_circuit(&hidden);
            let data: Vec<Qubit> = (0..hidden.len()).map(Qubit::new).collect();
            let dist = exact_distribution_with_final_measure(&c, &data);
            // Key layout: data reversed (MSB first) = s reversed.
            let expect: String = s.chars().rev().collect();
            assert!((dist.get(&expect) - 1.0).abs() < 1e-10, "BV_{s}: {dist}");
        }
    }

    #[test]
    fn dynamic_bv_is_exactly_equivalent() {
        for s in ["111", "010", "1001"] {
            let hidden = parse_hidden(s);
            let c = bv_circuit(&hidden);
            let roles = QubitRoles::data_plus_answer(hidden.len() + 1);
            let d = transform(&c, &roles, &TransformOptions::default()).unwrap();
            assert_eq!(d.circuit().num_qubits(), 2);
            let report = verify::compare(&c, &roles, &d);
            assert!(report.equivalent(1e-10), "BV_{s}: {report}");
        }
    }

    #[test]
    fn string_helpers_round_trip() {
        let bits = parse_hidden("0101");
        assert_eq!(string_of(&bits), "0101");
    }

    #[test]
    #[should_panic(expected = "invalid hidden-string")]
    fn parse_rejects_garbage() {
        let _ = parse_hidden("10a");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_hidden_string_rejected() {
        let _ = bv_circuit(&[]);
    }
}
