//! # qalgo — algorithm circuit generators and benchmark suites
//!
//! The workloads of the dynamic-quantum-circuit reproduction: Bernstein-
//! Vazirani and Deutsch-Jozsa circuit generators (with oracle synthesis
//! from truth tables via the positive-polarity Reed-Muller expansion), the
//! paper's Table I / Table II benchmark suites, and two design-space
//! extensions — quantum phase estimation (whose dynamic transformation
//! recovers iterative QPE exactly) and Grover search (which marks the
//! boundary where the transformation stops being accurate).
//!
//! # Examples
//!
//! ```
//! use qalgo::{dj_circuit, TruthTable};
//! use dqc::{transform_with_scheme, verify, DynamicScheme, QubitRoles, TransformOptions};
//!
//! let dj_or = dj_circuit(&TruthTable::or(2));
//! let roles = QubitRoles::data_plus_answer(3);
//! let d2 = transform_with_scheme(
//!     &dj_or, &roles, DynamicScheme::Dynamic2, &TransformOptions::default(),
//! )?;
//! let report = verify::compare(&dj_or, &roles, &d2);
//! assert!(report.equivalent(1e-10));
//! # Ok::<(), dqc::DqcError>(())
//! ```

mod bv;
mod dj;
mod grover;
mod oracle;
mod qpe;
mod simon;
pub mod suites;
mod teleport;

pub use bv::{bv_circuit, parse_hidden, string_of};
pub use dj::{dj_circuit, dj_verdict, DjVerdict};
pub use grover::{grover_circuit, optimal_iterations};
pub use oracle::TruthTable;
pub use qpe::{estimate_from_bits, qpe_circuit};
pub use simon::{run_simon, simon_circuit, simon_oracle, solve_gf2_nullspace};
pub use suites::{toffoli_free_suite, toffoli_suite, Benchmark};
pub use teleport::teleport_circuit;
