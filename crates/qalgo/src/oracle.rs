//! Boolean oracles: truth tables, Reed-Muller synthesis, oracle circuits.
//!
//! The paper's DJ benchmarks are named Boolean functions (AND, NAND, OR,
//! NOR, IMPLY, INHIB, CARRY, ...) realized as X/CX/CCX/MCX networks. This
//! module derives those networks *from the truth table* via the positive
//! polarity Reed-Muller (PPRM) expansion: `f = XOR of monomials`, where each
//! monomial becomes one (multi-)controlled X onto the oracle target.

use qcir::{Circuit, Qubit};
use std::fmt;

/// A complete truth table of an `n`-input Boolean function.
///
/// Input assignments are indexed with input 0 as the least-significant bit.
///
/// # Examples
///
/// ```
/// use qalgo::TruthTable;
/// let and = TruthTable::and(2);
/// assert!(!and.value(0b01));
/// assert!(and.value(0b11));
/// assert_eq!(and.num_inputs(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    num_inputs: usize,
    bits: Vec<bool>,
}

impl TruthTable {
    /// Builds a truth table from the output column (length `2^n`).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    #[must_use]
    pub fn from_bits(bits: Vec<bool>) -> Self {
        assert!(
            bits.len().is_power_of_two(),
            "truth table length must be a power of two"
        );
        Self {
            num_inputs: bits.len().trailing_zeros() as usize,
            bits,
        }
    }

    /// Builds a truth table by evaluating `f` on every assignment.
    #[must_use]
    pub fn from_fn(num_inputs: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        Self {
            num_inputs,
            bits: (0..1usize << num_inputs).map(&mut f).collect(),
        }
    }

    /// The constant-0 function.
    #[must_use]
    pub fn constant(num_inputs: usize, value: bool) -> Self {
        Self::from_fn(num_inputs, |_| value)
    }

    /// n-input AND.
    #[must_use]
    pub fn and(num_inputs: usize) -> Self {
        let all = (1usize << num_inputs) - 1;
        Self::from_fn(num_inputs, |x| x == all)
    }

    /// n-input OR.
    #[must_use]
    pub fn or(num_inputs: usize) -> Self {
        Self::from_fn(num_inputs, |x| x != 0)
    }

    /// n-input XOR (parity).
    #[must_use]
    pub fn xor(num_inputs: usize) -> Self {
        Self::from_fn(num_inputs, |x| x.count_ones() % 2 == 1)
    }

    /// 3-input majority (the paper's CARRY benchmark function).
    #[must_use]
    pub fn majority3() -> Self {
        Self::from_fn(3, |x| x.count_ones() >= 2)
    }

    /// Pass-through of input `which`.
    #[must_use]
    pub fn pass(num_inputs: usize, which: usize) -> Self {
        Self::from_fn(num_inputs, move |x| (x >> which) & 1 == 1)
    }

    /// Pointwise complement of `self`.
    #[must_use]
    pub fn complement(&self) -> Self {
        Self {
            num_inputs: self.num_inputs,
            bits: self.bits.iter().map(|b| !b).collect(),
        }
    }

    /// Number of inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Output for the assignment `x` (input 0 = bit 0).
    ///
    /// # Panics
    ///
    /// Panics if `x >= 2^n`.
    #[must_use]
    pub fn value(&self, x: usize) -> bool {
        self.bits[x]
    }

    /// Number of assignments mapped to 1.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// `true` when the function is constant.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.weight() == 0 || self.weight() == self.bits.len()
    }

    /// `true` when exactly half the assignments map to 1 (the
    /// Deutsch-Jozsa promise).
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        2 * self.weight() == self.bits.len()
    }

    /// The positive-polarity Reed-Muller (PPRM) expansion: the set of
    /// monomials whose XOR equals `f`. Each monomial is the sorted list of
    /// participating input indices; the empty monomial is the constant 1.
    ///
    /// Computed by the GF(2) Möbius (butterfly) transform.
    ///
    /// # Examples
    ///
    /// ```
    /// use qalgo::TruthTable;
    /// // OR(a, b) = a xor b xor ab.
    /// let monomials = TruthTable::or(2).pprm();
    /// assert_eq!(monomials, vec![vec![0], vec![1], vec![0, 1]]);
    /// ```
    #[must_use]
    pub fn pprm(&self) -> Vec<Vec<usize>> {
        let n = self.num_inputs;
        let mut coeff: Vec<bool> = self.bits.clone();
        for i in 0..n {
            let bit = 1usize << i;
            for x in 0..coeff.len() {
                if x & bit != 0 {
                    coeff[x] ^= coeff[x & !bit];
                }
            }
        }
        (0..coeff.len())
            .filter(|&m| coeff[m])
            .map(|m| (0..n).filter(|&i| m & (1 << i) != 0).collect())
            .collect()
    }

    /// Synthesizes the phase-free oracle `|x>|t> -> |x>|t xor f(x)>` as an
    /// X/CX/CCX/MCX network from the PPRM expansion.
    ///
    /// `inputs[i]` carries input `i`; `target` receives the output.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()` or wires repeat.
    #[must_use]
    pub fn synthesize(&self, inputs: &[Qubit], target: Qubit) -> Circuit {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "oracle needs {} input qubits",
            self.num_inputs
        );
        let max_wire = inputs
            .iter()
            .chain(std::iter::once(&target))
            .map(|q| q.index())
            .max()
            .unwrap_or(0);
        let mut c = Circuit::with_name("oracle", max_wire + 1, 0);
        for monomial in self.pprm() {
            match monomial.len() {
                0 => {
                    c.x(target);
                }
                1 => {
                    c.cx(inputs[monomial[0]], target);
                }
                2 => {
                    c.ccx(inputs[monomial[0]], inputs[monomial[1]], target);
                }
                _ => {
                    let controls: Vec<Qubit> = monomial.iter().map(|&i| inputs[i]).collect();
                    c.mcx(&controls, target);
                }
            }
        }
        c
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f(")?;
        for i in 0..self.num_inputs {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "x{i}")?;
        }
        write!(f, ") = [")?;
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::StateVector;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    /// Applies the synthesized oracle to the basis state `|x>|0>` and
    /// checks the target flips exactly when `f(x)`.
    fn check_oracle(tt: &TruthTable) {
        let n = tt.num_inputs();
        let inputs: Vec<Qubit> = (0..n).map(Qubit::new).collect();
        let target = Qubit::new(n);
        let circ = tt.synthesize(&inputs, target);
        for x in 0..1usize << n {
            let mut sv = StateVector::basis_state(circ.num_qubits(), x);
            for inst in circ.iter() {
                let qs: Vec<usize> = inst.qubits().iter().map(|qq| qq.index()).collect();
                sv.apply_gate(inst.as_gate().unwrap(), &qs);
            }
            let expect = x | (usize::from(tt.value(x)) << n);
            assert!(
                (sv.amplitudes()[expect].abs() - 1.0).abs() < 1e-9,
                "{tt}: wrong output for x = {x:b}"
            );
        }
    }

    #[test]
    fn named_tables_have_expected_values() {
        assert_eq!(TruthTable::and(2).weight(), 1);
        assert_eq!(TruthTable::or(2).weight(), 3);
        assert_eq!(TruthTable::xor(3).weight(), 4);
        assert_eq!(TruthTable::majority3().weight(), 4);
        assert!(TruthTable::constant(2, true).is_constant());
        assert!(TruthTable::xor(2).is_balanced());
        assert!(!TruthTable::and(2).is_balanced());
        assert!(!TruthTable::and(2).is_constant());
    }

    #[test]
    fn pass_reads_single_input() {
        let p = TruthTable::pass(3, 1);
        assert!(p.value(0b010));
        assert!(!p.value(0b101));
        assert_eq!(p.pprm(), vec![vec![1]]);
    }

    #[test]
    fn complement_flips_every_entry() {
        let nand = TruthTable::and(2).complement();
        assert_eq!(nand.weight(), 3);
        assert!(nand.value(0));
        assert!(!nand.value(3));
    }

    #[test]
    fn pprm_of_known_functions() {
        assert_eq!(TruthTable::and(2).pprm(), vec![vec![0, 1]]);
        assert_eq!(TruthTable::xor(2).pprm(), vec![vec![0], vec![1]]);
        assert_eq!(
            TruthTable::constant(2, true).pprm(),
            vec![Vec::<usize>::new()]
        );
        assert!(TruthTable::constant(3, false).pprm().is_empty());
        // MAJ = ab xor ac xor bc.
        assert_eq!(
            TruthTable::majority3().pprm(),
            vec![vec![0, 1], vec![0, 2], vec![1, 2]]
        );
    }

    #[test]
    fn pprm_round_trips_through_evaluation() {
        // Evaluate the XOR of monomials and compare against the table.
        for tt in [
            TruthTable::or(3),
            TruthTable::and(3).complement(),
            TruthTable::from_bits(vec![true, false, true, true, false, false, true, false]),
        ] {
            let monomials = tt.pprm();
            for x in 0..1usize << tt.num_inputs() {
                let mut acc = false;
                for m in &monomials {
                    acc ^= m.iter().all(|&i| x & (1 << i) != 0);
                }
                assert_eq!(acc, tt.value(x), "{tt} at {x:b}");
            }
        }
    }

    #[test]
    fn synthesized_oracles_compute_their_functions() {
        check_oracle(&TruthTable::and(2));
        check_oracle(&TruthTable::or(2));
        check_oracle(&TruthTable::xor(2));
        check_oracle(&TruthTable::and(2).complement());
        check_oracle(&TruthTable::majority3());
        check_oracle(&TruthTable::constant(2, true));
        check_oracle(&TruthTable::and(3)); // uses MCX
    }

    #[test]
    fn synthesis_handles_arbitrary_tables() {
        for bits_val in 0..16u8 {
            let bits = (0..4).map(|i| bits_val & (1 << i) != 0).collect();
            check_oracle(&TruthTable::from_bits(bits));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_bits_rejects_bad_length() {
        let _ = TruthTable::from_bits(vec![true, false, true]);
    }

    #[test]
    #[should_panic(expected = "input qubits")]
    fn synthesize_rejects_wrong_input_count() {
        let _ = TruthTable::and(2).synthesize(&[q(0)], q(1));
    }

    #[test]
    fn display_shows_output_column() {
        assert_eq!(TruthTable::and(2).to_string(), "f(x0,x1) = [0001]");
    }
}
