//! The paper's benchmark suites (Tables I and II).
//!
//! Each benchmark bundles a name, the traditional circuit (Toffolis kept at
//! the `CCX` level; the table harness lowers them to Clifford+T for the
//! traditional columns) and the data/answer role partition used by the
//! dynamic transformation.

use crate::bv::{bv_circuit, parse_hidden};
use crate::dj::dj_circuit;
use crate::oracle::TruthTable;
use dqc::QubitRoles;
use qcir::Circuit;

/// A named benchmark instance.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Table row name (e.g. `BV_110`, `AND`, `CARRY`).
    pub name: String,
    /// The traditional circuit (no measurements, Toffolis at `CCX` level).
    pub circuit: Circuit,
    /// Role partition for the dynamic transformation.
    pub roles: QubitRoles,
}

impl Benchmark {
    fn new(name: impl Into<String>, circuit: Circuit) -> Self {
        let roles = QubitRoles::data_plus_answer(circuit.num_qubits());
        Self {
            name: name.into(),
            circuit,
            roles,
        }
    }
}

/// The hidden strings of Table I's BV rows, in the paper's order.
pub const BV_HIDDEN_STRINGS: [&str; 20] = [
    "111", "110", "101", "011", "100", "010", "001", "1111", "1110", "1101", "1011", "0111",
    "1010", "1001", "0110", "0101", "1000", "0100", "0010", "0001",
];

/// The Toffoli-free suite of Table I: 20 BV instances and 8 DJ functions.
#[must_use]
pub fn toffoli_free_suite() -> Vec<Benchmark> {
    let mut out = Vec::new();
    for s in BV_HIDDEN_STRINGS {
        out.push(Benchmark::new(
            format!("BV_{s}"),
            bv_circuit(&parse_hidden(s)),
        ));
    }
    for (name, tt) in toffoli_free_dj_functions() {
        out.push(Benchmark::new(name, dj_circuit(&tt)));
    }
    out
}

/// The eight Toffoli-free DJ functions of Table I.
#[must_use]
pub fn toffoli_free_dj_functions() -> Vec<(&'static str, TruthTable)> {
    vec![
        ("DJ_CONST_0", TruthTable::constant(2, false)),
        ("DJ_CONST_1", TruthTable::constant(2, true)),
        ("DJ_PASS_1", TruthTable::pass(2, 0)),
        ("DJ_PASS_2", TruthTable::pass(2, 1)),
        ("DJ_INVERT_1", TruthTable::pass(2, 0).complement()),
        ("DJ_INVERT_2", TruthTable::pass(2, 1).complement()),
        ("DJ_XOR", TruthTable::xor(2)),
        ("DJ_XNOR", TruthTable::xor(2).complement()),
    ]
}

/// The nine Toffoli-based DJ functions of Table II.
#[must_use]
pub fn toffoli_dj_functions() -> Vec<(&'static str, TruthTable)> {
    let imply = |swap: bool| {
        TruthTable::from_fn(2, move |x| {
            let (a, b) = (x & 1 != 0, x & 2 != 0);
            let (p, q) = if swap { (b, a) } else { (a, b) };
            !p || q
        })
    };
    let inhib = |swap: bool| {
        TruthTable::from_fn(2, move |x| {
            let (a, b) = (x & 1 != 0, x & 2 != 0);
            let (p, q) = if swap { (b, a) } else { (a, b) };
            p && !q
        })
    };
    vec![
        ("AND", TruthTable::and(2)),
        ("NAND", TruthTable::and(2).complement()),
        ("OR", TruthTable::or(2)),
        ("NOR", TruthTable::or(2).complement()),
        ("IMPLY_1", imply(false)),
        ("IMPLY_2", imply(true)),
        ("INHIB_1", inhib(false)),
        ("INHIB_2", inhib(true)),
        ("CARRY", TruthTable::majority3()),
    ]
}

/// The Toffoli-based suite of Table II / Fig. 7.
#[must_use]
pub fn toffoli_suite() -> Vec<Benchmark> {
    toffoli_dj_functions()
        .into_iter()
        .map(|(name, tt)| Benchmark::new(name, dj_circuit(&tt)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::decompose::{decompose_ccx, ToffoliStyle};
    use qcir::Gate;

    #[test]
    fn table_one_suite_has_28_rows() {
        let suite = toffoli_free_suite();
        assert_eq!(suite.len(), 28);
        assert_eq!(suite[0].name, "BV_111");
        assert_eq!(suite[27].name, "DJ_XNOR");
    }

    #[test]
    fn table_one_suite_is_toffoli_free() {
        for b in toffoli_free_suite() {
            assert!(
                b.circuit.iter().all(|i| i.as_gate() != Some(&Gate::Ccx)),
                "{} contains a Toffoli",
                b.name
            );
        }
    }

    #[test]
    fn table_two_suite_has_nine_rows_with_toffolis() {
        let suite = toffoli_suite();
        assert_eq!(suite.len(), 9);
        for b in &suite {
            let ccx = b
                .circuit
                .iter()
                .filter(|i| i.as_gate() == Some(&Gate::Ccx))
                .count();
            let expect = if b.name == "CARRY" { 3 } else { 1 };
            assert_eq!(ccx, expect, "{}", b.name);
        }
    }

    #[test]
    fn qubit_counts_match_the_tables() {
        for b in toffoli_free_suite() {
            let expect = if b.name.starts_with("BV") {
                // "BV_" + hidden string + answer qubit.
                b.name.len() - 3 + 1
            } else {
                3
            };
            assert_eq!(b.circuit.num_qubits(), expect, "{}", b.name);
        }
        for b in toffoli_suite() {
            let expect = if b.name == "CARRY" { 4 } else { 3 };
            assert_eq!(b.circuit.num_qubits(), expect, "{}", b.name);
        }
    }

    #[test]
    fn clifford_t_gate_counts_match_table_two() {
        // The paper's traditional gate counts for Table II.
        let expect = [
            ("AND", 21),
            ("NAND", 22),
            ("OR", 23),
            ("NOR", 24),
            ("IMPLY_1", 23),
            ("IMPLY_2", 23),
            ("INHIB_1", 22),
            ("INHIB_2", 22),
            ("CARRY", 53),
        ];
        for (bench, (name, count)) in toffoli_suite().iter().zip(expect) {
            assert_eq!(bench.name, name);
            let lowered = decompose_ccx(&bench.circuit, ToffoliStyle::CliffordT);
            assert_eq!(lowered.len(), count, "{name}");
        }
    }

    #[test]
    fn imply_and_inhib_truth_tables() {
        let fns = toffoli_dj_functions();
        let imply1 = &fns[4].1; // a -> b
        assert!(imply1.value(0b00));
        assert!(!imply1.value(0b01)); // a=1, b=0
        assert!(imply1.value(0b10));
        assert!(imply1.value(0b11));
        let inhib1 = &fns[6].1; // a AND NOT b
        assert!(!inhib1.value(0b00));
        assert!(inhib1.value(0b01));
        assert!(!inhib1.value(0b10));
        assert!(!inhib1.value(0b11));
    }

    #[test]
    fn roles_partition_every_benchmark() {
        for b in toffoli_free_suite().iter().chain(&toffoli_suite()) {
            assert!(b.roles.validate(&b.circuit).is_ok(), "{}", b.name);
        }
    }
}
