//! Pins the reuse planner's `auto` selection on the four seeded suites.
//!
//! These tests lock in which width the default [`CostModel`] picks for
//! BV_110, DJ_XOR, 3-qubit Grover and CARRY under dynamic-2 lowering, plus
//! how the `width_first`/`depth_first` presets move the choice. A change in
//! the cost model, the planner's static filter, or the soundness rule that
//! decides feasible widths shows up here first.

use dqc::{plan_with_scheme, CostModel, DynamicScheme, QubitRoles, ReuseMode, TransformOptions};
use qalgo::{grover_circuit, optimal_iterations, toffoli_free_suite, toffoli_suite};
use qcir::Circuit;

fn suite_workload(name: &str) -> (Circuit, QubitRoles) {
    let b = toffoli_free_suite()
        .into_iter()
        .chain(toffoli_suite())
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("{name} is a seeded suite row"));
    (b.circuit, b.roles)
}

fn grover3() -> (Circuit, QubitRoles) {
    let circuit = grover_circuit(0b101, 3, optimal_iterations(3));
    let roles = QubitRoles::data_plus_answer(circuit.num_qubits());
    (circuit, roles)
}

fn auto_k(circuit: &Circuit, roles: &QubitRoles, cost: &CostModel) -> usize {
    let (_, report) = plan_with_scheme(
        circuit,
        roles,
        DynamicScheme::Dynamic2,
        ReuseMode::Auto,
        cost,
        &TransformOptions::default(),
    )
    .unwrap_or_else(|e| panic!("auto planning failed: {e}"));
    report.k
}

#[test]
fn default_cost_model_selections_are_pinned() {
    // Toffoli-free suites have every width sound, so the default model's
    // balanced width x depth trade lands in the middle.
    let expect = [("BV_110", 2), ("DJ_XOR", 2)];
    for (name, k) in expect {
        let (circuit, roles) = suite_workload(name);
        assert_eq!(auto_k(&circuit, &roles, &CostModel::default()), k, "{name}");
    }
    // Toffoli networks only have sound plans at the extremes (k = 1 keeps
    // the paper's approximation; k = m classicalizes nothing), and the
    // default model prefers the narrow end.
    let (grover, groles) = grover3();
    assert_eq!(auto_k(&grover, &groles, &CostModel::default()), 1);
    let (carry, croles) = suite_workload("CARRY");
    assert_eq!(auto_k(&carry, &croles, &CostModel::default()), 1);
}

#[test]
fn width_first_always_picks_the_paper_scheme() {
    let cost = CostModel::width_first();
    for (circuit, roles) in [
        suite_workload("BV_110"),
        suite_workload("DJ_XOR"),
        grover3(),
        suite_workload("CARRY"),
    ] {
        assert_eq!(auto_k(&circuit, &roles, &cost), 1);
    }
}

#[test]
fn depth_first_picks_the_widest_feasible_plan() {
    let cost = CostModel::depth_first();
    let expect = [("BV_110", 3), ("DJ_XOR", 2), ("CARRY", 4)];
    for (name, k) in expect {
        let (circuit, roles) = suite_workload(name);
        assert_eq!(auto_k(&circuit, &roles, &cost), k, "{name}");
    }
    let (grover, groles) = grover3();
    assert_eq!(auto_k(&grover, &groles, &cost), 2);
}

#[test]
fn feasible_widths_match_the_soundness_rule() {
    // BV's work qubits never interact, so every width up to m = 3 works;
    // CARRY's classicalized Toffoli reads are only exact at the extremes.
    let cost = CostModel::default();
    let opts = TransformOptions::default();
    let (bv, bv_roles) = suite_workload("BV_110");
    let (_, report) = plan_with_scheme(
        &bv,
        &bv_roles,
        DynamicScheme::Dynamic2,
        ReuseMode::Auto,
        &cost,
        &opts,
    )
    .unwrap_or_else(|e| panic!("bv: {e}"));
    assert_eq!(report.feasible_widths, vec![1, 2, 3]);

    let (carry, carry_roles) = suite_workload("CARRY");
    let (_, report) = plan_with_scheme(
        &carry,
        &carry_roles,
        DynamicScheme::Dynamic2,
        ReuseMode::Auto,
        &cost,
        &opts,
    )
    .unwrap_or_else(|e| panic!("carry: {e}"));
    assert_eq!(report.feasible_widths, vec![1, 4]);
    assert_eq!(report.max_width, 4);
}
