//! Property-based tests for the algorithm generators.

use dqc::{transform, verify, QubitRoles, TransformOptions};
use proptest::prelude::*;
use qalgo::{bv_circuit, dj_circuit, qpe_circuit, TruthTable};
use qcir::Qubit;
use qsim::branch::exact_distribution_with_final_measure;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BV always recovers the hidden string deterministically, and its
    /// dynamic realization agrees exactly.
    #[test]
    fn bv_round_trip(hidden in proptest::collection::vec(any::<bool>(), 1..5)) {
        let circ = bv_circuit(&hidden);
        let data: Vec<Qubit> = (0..hidden.len()).map(Qubit::new).collect();
        let dist = exact_distribution_with_final_measure(&circ, &data);
        let key: String = hidden.iter().rev().map(|&b| if b { '1' } else { '0' }).collect();
        prop_assert!((dist.get(&key) - 1.0).abs() < 1e-9);

        let roles = QubitRoles::data_plus_answer(hidden.len() + 1);
        let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
        let report = verify::compare(&circ, &roles, &d);
        prop_assert!(report.equivalent(1e-9), "{}", report);
    }

    /// Synthesized oracles compute their truth table on every input.
    #[test]
    fn oracle_synthesis_is_correct(bits in proptest::collection::vec(any::<bool>(), 8)) {
        let tt = TruthTable::from_bits(bits);
        let n = tt.num_inputs();
        let inputs: Vec<Qubit> = (0..n).map(Qubit::new).collect();
        let circ = tt.synthesize(&inputs, Qubit::new(n));
        for x in 0..1usize << n {
            let mut sv = qsim::StateVector::basis_state(circ.num_qubits(), x);
            for inst in circ.iter() {
                let qs: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
                sv.apply_gate(inst.as_gate().unwrap(), &qs);
            }
            let expect = x | (usize::from(tt.value(x)) << n);
            prop_assert!((sv.amplitudes()[expect].abs() - 1.0).abs() < 1e-9);
        }
    }

    /// DJ on constant functions yields all-zeros with certainty; on
    /// balanced functions, never.
    #[test]
    fn dj_promise_holds(bits in proptest::collection::vec(any::<bool>(), 8)) {
        let tt = TruthTable::from_bits(bits);
        let n = tt.num_inputs();
        let circ = dj_circuit(&tt);
        let data: Vec<Qubit> = (0..n).map(Qubit::new).collect();
        let dist = exact_distribution_with_final_measure(&circ, &data);
        let zeros = "0".repeat(n);
        if tt.is_constant() {
            prop_assert!((dist.get(&zeros) - 1.0).abs() < 1e-9);
        } else if tt.is_balanced() {
            prop_assert!(dist.get(&zeros) < 1e-9);
        } else {
            // Neither: zeros probability strictly between 0 and 1.
            let p = dist.get(&zeros);
            prop_assert!(p < 1.0 - 1e-9);
        }
    }

    /// The PPRM expansion is the unique GF(2) polynomial of the function.
    #[test]
    fn pprm_evaluates_back(bits in proptest::collection::vec(any::<bool>(), 16)) {
        let tt = TruthTable::from_bits(bits);
        let monomials = tt.pprm();
        for x in 0..1usize << tt.num_inputs() {
            let mut acc = false;
            for m in &monomials {
                acc ^= m.iter().all(|&i| x & (1 << i) != 0);
            }
            prop_assert_eq!(acc, tt.value(x));
        }
    }

    /// Dynamic QPE is exact for every (theta, n) — the semiclassical QFT.
    #[test]
    fn dynamic_qpe_always_exact(theta in 0.0f64..1.0, n in 1usize..4) {
        let circ = qpe_circuit(theta, n);
        let roles = QubitRoles::data_plus_answer(n + 1);
        let d = transform(&circ, &roles, &TransformOptions::default()).unwrap();
        let report = verify::compare(&circ, &roles, &d);
        prop_assert!(report.equivalent(1e-8), "theta={theta}: {report}");
    }
}
